package core

import (
	"errors"
	"math"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"
)

// --- Phantom-entry regression (satellite bugfix) ---------------------------
//
// On the seed code, a failed first SetInitCwnd still inserted the entry:
// Lookup reported window 0 and Close/expiry issued a spurious ClearInitCwnd
// for a route that was never installed. The three-stage Tick records an
// entry only after its route is actually programmed.

func TestFailedFirstProgramLeavesNoPhantomEntry(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	routes.failSet = errors.New("ip route exploded")

	if err := a.Tick(); err == nil {
		t.Fatal("route error swallowed")
	}
	if _, ok := a.Lookup(d); ok {
		t.Error("Lookup reports a phantom entry after a failed first program")
	}
	if got := len(a.Entries()); got != 0 {
		t.Errorf("Entries = %d, want 0", got)
	}

	// Close must not withdraw a route that was never installed.
	routes.failSet = nil
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if routes.clrOps != 0 {
		t.Errorf("Close issued %d spurious ClearInitCwnd calls for a never-installed route", routes.clrOps)
	}
}

func TestFailedFirstProgramNoSpuriousExpiry(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 50}},
		{}, // destination disappears
	}}
	a, routes, clock := newAgent(t, Config{Sampler: sampler, TTL: time.Second})
	routes.failSet = errors.New("ip route exploded")
	if err := a.Tick(); err == nil {
		t.Fatal("route error swallowed")
	}
	routes.failSet = nil
	clock.Advance(time.Hour) // far past TTL
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if routes.clrOps != 0 {
		t.Errorf("expiry issued %d ClearInitCwnd calls for a never-installed route", routes.clrOps)
	}
	if s := a.Stats(); s.EntriesExpired != 0 {
		t.Errorf("EntriesExpired = %d, want 0", s.EntriesExpired)
	}
}

func TestFailedReprogramKeepsInstalledWindow(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 50}},
		{{Dst: d, Cwnd: 90}},
	}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, History: NoHistory{}})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	routes.failSet = errors.New("ip route exploded")
	if err := a.Tick(); err == nil {
		t.Fatal("route error swallowed")
	}
	// The installed route still carries 50; the entry must agree.
	if w, ok := a.Lookup(d); !ok || w != 50 {
		t.Errorf("Lookup = %d,%v; want 50,true (the installed window)", w, ok)
	}
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 50 {
		t.Errorf("installed route = %d, want 50", got)
	}
}

// --- Reader liveness under a slow backend (tentpole) -----------------------

// slowSampler signals when sampling starts, then sleeps.
type slowSampler struct {
	started chan struct{}
	delay   time.Duration
	obs     []Observation
}

func (s *slowSampler) SampleConnections(buf []Observation) ([]Observation, error) {
	select {
	case s.started <- struct{}{}:
	default:
	}
	time.Sleep(s.delay)
	return append(buf, s.obs...), nil
}

func TestReadersReturnWhileTickBlockedInSampler(t *testing.T) {
	d := netip.MustParseAddr("10.0.0.7")
	sampler := &slowSampler{
		started: make(chan struct{}, 1),
		delay:   time.Second,
		obs:     []Observation{{Dst: d, Cwnd: 64}},
	}
	clock := &fakeClock{}
	routes := newFakeRoutes()
	a, err := New(Config{Sampler: sampler, Routes: routes, Clock: clock.fn()})
	if err != nil {
		t.Fatal(err)
	}

	tickDone := make(chan error, 1)
	go func() { tickDone <- a.Tick() }()
	<-sampler.started // Tick is now inside SampleConnections for ~1s

	readersDone := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(readersDone)
		_ = a.Entries()
		_, _ = a.Lookup(d)
		_ = a.Stats()
	}()
	select {
	case <-readersDone:
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Errorf("readers took %v while Tick was sampling; want immediate return", elapsed)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("Entries/Lookup/Stats blocked while Tick was inside the sampler")
	}

	if err := <-tickDone; err != nil {
		t.Fatal(err)
	}
	if w, ok := a.Lookup(d); !ok || w != 64 {
		t.Errorf("post-tick Lookup = %d,%v; want 64,true", w, ok)
	}
}

// --- Non-finite clamp and Advisor guards (satellite bugfix) ----------------

// constCombiner returns a fixed value regardless of observations.
type constCombiner struct{ v float64 }

func (c constCombiner) Name() string                  { return "const" }
func (c constCombiner) Combine([]Observation) float64 { return c.v }

func TestClampGuardsNonFiniteCombinerOutput(t *testing.T) {
	for name, v := range map[string]float64{
		"nan":  math.NaN(),
		"+inf": math.Inf(1),
		"-inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			d := dst(t, "10.0.0.1")
			sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
			a, routes, _ := newAgent(t, Config{
				Sampler:  sampler,
				Combiner: constCombiner{v: v},
				History:  NoHistory{},
			})
			if err := a.Tick(); err != nil {
				t.Fatal(err)
			}
			// A non-finite combined value is dropped before it can
			// poison history state or reach a route program: the
			// destination is skipped for the round, not clamped.
			if got, ok := routes.set[pfx(t, "10.0.0.1/32")]; ok {
				t.Errorf("route programmed with window %d for %s combiner output; want none", got, name)
			}
			if got := a.Stats().CombinerRejects; got != 1 {
				t.Errorf("CombinerRejects = %d, want 1", got)
			}
		})
	}
}

// nanPoisonHistory proves rejection happens before History.Update: a single
// bad round must not contaminate the EWMA that good rounds built.
func TestNonFiniteCombinerDoesNotPoisonHistory(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 50}},
		{{Dst: d, Cwnd: 50}},
	}}
	var comb atomicCombiner
	comb.v.Store(math.Float64bits(50))
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Combiner: &comb})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	comb.v.Store(math.Float64bits(math.NaN()))
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 50 {
		t.Errorf("window after NaN round = %d, want 50 (history preserved)", got)
	}
}

// atomicCombiner returns a runtime-adjustable fixed value.
type atomicCombiner struct{ v atomic.Uint64 }

func (c *atomicCombiner) Name() string { return "atomic-const" }
func (c *atomicCombiner) Combine([]Observation) float64 {
	return math.Float64frombits(c.v.Load())
}

// badAdvisor returns a fixed multiplier for every destination.
type badAdvisor struct{ m float64 }

func (b badAdvisor) Advise(netip.Prefix) float64 { return b.m }

func TestNonFiniteAdvisorOutputRejected(t *testing.T) {
	for name, m := range map[string]float64{
		"nan":  math.NaN(),
		"+inf": math.Inf(1),
		"-inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			d := dst(t, "10.0.0.1")
			sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
			a, routes, _ := newAgent(t, Config{Sampler: sampler, Advisor: badAdvisor{m: m}})
			if err := a.Tick(); err != nil {
				t.Fatal(err)
			}
			// The multiplier is rejected: the window reflects the
			// observations alone.
			if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 50 {
				t.Errorf("window = %d, want 50 (non-finite advisor multiplier must be ignored)", got)
			}
			if got := a.Metrics().Counter("riptide_advisor_rejects").Value(); got != 1 {
				t.Errorf("advisor rejects = %d, want 1", got)
			}
		})
	}
}

func TestFiniteAdvisorStillApplies(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 80}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Advisor: badAdvisor{m: 0.5}})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 40 {
		t.Errorf("window = %d, want 40 (0.5 damping applied)", got)
	}
}

// --- Sampler circuit breaker (tentpole) ------------------------------------

func TestBreakerOpensAfterConsecutiveSampleErrors(t *testing.T) {
	sampler := &fakeSampler{err: errors.New("ss wedged")}
	a, _, clock := newAgent(t, Config{
		Sampler:          sampler,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Second,
	})

	for i := 0; i < 3; i++ {
		if err := a.Tick(); err == nil {
			t.Fatalf("tick %d: sampler error swallowed", i)
		}
		clock.Advance(time.Second)
	}
	s := a.Stats()
	if s.SampleErrors != 3 || s.BreakerOpens != 1 {
		t.Fatalf("stats after threshold = %+v", s)
	}

	// Open: ticks degrade to expiry-only passes and return nil.
	for i := 0; i < 4; i++ {
		if err := a.Tick(); err != nil {
			t.Fatalf("degraded tick returned %v", err)
		}
		clock.Advance(time.Second)
	}
	s = a.Stats()
	if s.DegradedTicks != 4 {
		t.Errorf("DegradedTicks = %d, want 4", s.DegradedTicks)
	}
	if s.SampleErrors != 3 {
		t.Errorf("SampleErrors = %d, want 3 (no sampling while open)", s.SampleErrors)
	}

	// After the cooldown a probe tick samples again; failure re-arms the
	// breaker without counting another open.
	clock.Advance(30 * time.Second)
	if err := a.Tick(); err == nil {
		t.Fatal("probe tick error swallowed")
	}
	s = a.Stats()
	if s.SampleErrors != 4 || s.BreakerOpens != 1 {
		t.Errorf("stats after failed probe = %+v", s)
	}
	if err := a.Tick(); err != nil {
		t.Fatalf("tick after failed probe should be degraded, got %v", err)
	}

	// A healthy probe closes the breaker and normal operation resumes.
	clock.Advance(31 * time.Second)
	d := dst(t, "10.0.0.1")
	sampler.err = nil
	sampler.rounds = [][]Observation{{{Dst: d, Cwnd: 50}}}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if w, ok := a.Lookup(d); !ok || w != 50 {
		t.Errorf("post-recovery Lookup = %d,%v; want 50,true", w, ok)
	}
	if err := a.Tick(); err != nil {
		t.Fatalf("tick after recovery = %v (breaker must be closed)", err)
	}
}

func TestBreakerDegradedTicksStillExpire(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, clock := newAgent(t, Config{
		Sampler:          sampler,
		TTL:              10 * time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	sampler.err = errors.New("ss wedged")
	_ = a.Tick()
	_ = a.Tick() // breaker opens
	if a.Stats().BreakerOpens != 1 {
		t.Fatal("breaker did not open")
	}
	clock.Advance(time.Minute) // past TTL, still inside cooldown
	if err := a.Tick(); err != nil {
		t.Fatalf("degraded tick = %v", err)
	}
	if len(routes.set) != 0 {
		t.Error("stale route survived a degraded tick past its TTL")
	}
	if _, ok := a.Lookup(d); ok {
		t.Error("stale entry survived a degraded tick past its TTL")
	}
}

func TestBreakerDisabled(t *testing.T) {
	sampler := &fakeSampler{err: errors.New("ss wedged")}
	a, _, clock := newAgent(t, Config{Sampler: sampler, BreakerThreshold: -1})
	for i := 0; i < 20; i++ {
		if err := a.Tick(); err == nil {
			t.Fatalf("tick %d: error swallowed with breaker disabled", i)
		}
		clock.Advance(time.Second)
	}
	s := a.Stats()
	if s.SampleErrors != 20 || s.DegradedTicks != 0 || s.BreakerOpens != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// --- Metrics wiring --------------------------------------------------------

func TestTickRecordsDurationsInMetrics(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, _, _ := newAgent(t, Config{Sampler: sampler})
	for i := 0; i < 3; i++ {
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	snap := a.Metrics().Snapshot()
	if got := snap.Histograms["riptide_tick_duration"].Count; got != 3 {
		t.Errorf("tick duration observations = %d, want 3", got)
	}
	if got := snap.Histograms["riptide_sample_duration"].Count; got != 3 {
		t.Errorf("sample duration observations = %d, want 3", got)
	}
	// One successful program (first round), stable value afterwards.
	if got := snap.Histograms["riptide_program_duration"].Count; got != 1 {
		t.Errorf("program duration observations = %d, want 1", got)
	}
}
