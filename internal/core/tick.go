package core

import (
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// This file implements the agent's poll round as a four-stage pipeline:
//
//	sample  — outside any lock: run the sampler (which may block for
//	          seconds against a wedged `ss`) into a pooled buffer.
//	plan    — fanned out over the state shards: validate and route each
//	          observation to its shard (ingest), then per shard regroup,
//	          combine, smooth, clamp, review, refresh TTLs, and emit the
//	          shard's route plan. Workers touch disjoint shards, so the
//	          only shared state is each shard's own lock.
//	commit  — a short global section: merge the per-shard plans, sort
//	          them for deterministic programming order, and fold the
//	          shards' stat deltas into Stats.
//	program — outside the locks again: apply the whole plan through the
//	          BatchRouteProgrammer when the backend offers one (a single
//	          `ip -batch` exec / one kernel lock acquisition), falling
//	          back to per-op SetInitCwnd / ClearInitCwnd calls. Each
//	          shard lock is re-taken only to record results. An entry is
//	          recorded only after its route is actually installed, so a
//	          failed first program leaves no phantom entry.
//
// tickMu serializes whole rounds (and Close) so the stages of two mutators
// cannot interleave; no shard lock is held across a backend call, so Lookup,
// Entries, and Stats return promptly even mid-round. The merged plan is
// sorted by prefix before programming, so the agent's output — route ops,
// their order, and first-error identity — is byte-identical for every shard
// and worker count.

// programOp is one planned route installation.
type programOp struct {
	dst    netip.Prefix
	window int
	obs    int // group size this round, recorded on success
}

// clearKind distinguishes why a route withdrawal was planned, which decides
// the stats it bumps and whether expiry is re-checked before clearing.
type clearKind int

const (
	clearKindExpired clearKind = iota
	clearKindGuard
)

// Tick executes one iteration of Algorithm 1: sample, group, combine,
// smooth, clamp, program, expire. It returns the first route-programming
// error encountered (after attempting all destinations) or a sampling
// error. While the sampler circuit breaker is open, Tick degrades to an
// expiry-only pass and returns nil; the degradation is visible in Stats.
func (a *Agent) Tick() error {
	start := time.Now()
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	defer func() { a.mTick.Observe(time.Since(start)) }()

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	a.stats.Ticks++
	a.mu.Unlock()
	// The plan stage stamps destStates with this sequence to detect "first
	// touch this tick" without clearing per-tick fields across the table.
	a.tickSeq++

	now := a.cfg.Clock()

	// Sample stage, outside any lock.
	if a.breakerBlocks(now) {
		a.countLocked(func(s *Stats) { s.DegradedTicks++ })
		return a.expirePass(now)
	}
	sampleStart := time.Now()
	obs, err := a.cfg.Sampler.SampleConnections(a.obsBuf[:0])
	a.mSample.Observe(time.Since(sampleStart))
	if err != nil {
		a.noteSampleFailure(now)
		// Expire stale entries even when sampling fails, so a dead
		// sampler cannot pin stale aggressive windows forever.
		if expErr := a.expirePass(now); expErr != nil {
			return fmt.Errorf("sample connections: %v (also: %w)", err, expErr)
		}
		return fmt.Errorf("sample connections: %w", err)
	}
	if obs != nil {
		a.obsBuf = obs // keep the grown buffer for the next round
	}
	a.noteSampleSuccess()

	// Plan stage: route observations to shards, then plan each shard.
	// Small rounds stay serial — goroutines cost more than they save.
	planStart := time.Now()
	nShards := len(a.shards)
	workers := 1
	if nShards > 1 && len(obs) >= parallelThreshold {
		workers = nShards
	}
	a.ingestWorkers = workers
	for i := 0; i < workers*nShards; i++ {
		a.buckets[i] = a.buckets[i][:0]
	}
	runParallel(workers, func(w int) { a.ingestChunk(w, obs) })
	// The governor sees every valid sample above, then closes its round
	// before any Review call.
	if a.cfg.Guard != nil {
		a.cfg.Guard.ObserveTick(now)
	}
	if workers > 1 {
		runParallel(nShards, func(s int) { a.planShard(s, obs, now) })
	} else {
		for s := 0; s < nShards; s++ {
			a.planShard(s, obs, now)
		}
	}
	a.mPlan.Observe(time.Since(planStart))

	// Commit stage: merge the per-shard plans deterministically and fold
	// the stat deltas — the only remaining global critical section.
	commitStart := time.Now()
	plan := a.planBuf[:0]
	clears := a.clearBuf[:0]
	var delta tickDelta
	for _, sh := range a.shards {
		plan = append(plan, sh.plan...)
		clears = append(clears, sh.guardClears...)
		delta.add(sh.delta)
		sh.delta = tickDelta{}
	}
	expiredStart := len(clears)
	for _, sh := range a.shards {
		clears = append(clears, sh.expired...)
	}
	a.planBuf = plan
	a.clearBuf = clears
	guardClears, expired := clears[:expiredStart], clears[expiredStart:]
	sort.Slice(plan, func(i, j int) bool { return lessPrefix(plan[i].dst, plan[j].dst) })
	sort.Slice(guardClears, func(i, j int) bool { return lessPrefix(guardClears[i], guardClears[j]) })
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })

	a.mu.Lock()
	a.stats.Observations += uint64(len(obs))
	a.stats.CombinerRejects += delta.combinerRejects
	a.stats.GuardCapped += delta.guardCapped
	a.stats.GuardVetoed += delta.guardVetoed
	a.stats.GuardQuarantined += delta.guardQuarantined
	a.mu.Unlock()
	if delta.combinerRejects > 0 {
		a.cfg.Metrics.Counter("riptide_combiner_rejects").Add(delta.combinerRejects)
	}
	if delta.advisorRejects > 0 {
		a.cfg.Metrics.Counter("riptide_advisor_rejects").Add(delta.advisorRejects)
	}
	a.mCommit.Observe(time.Since(commitStart))

	// Program stage, outside the locks.
	firstErr := a.programPlan(plan, now)
	if err := a.clearTargets(guardClears, clearKindGuard, now); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.clearTargets(expired, clearKindExpired, now); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// programPlan installs the round's route plan — through one batch call when
// the backend supports it — and commits each success into its shard.
func (a *Agent) programPlan(plan []programOp, now time.Duration) error {
	if len(plan) == 0 {
		return nil
	}
	bp, batch := a.cfg.Routes.(BatchRouteProgrammer)
	var batchErrs []error
	if batch {
		ops := a.opsBuf[:0]
		for _, op := range plan {
			ops = append(ops, RouteOp{Prefix: op.dst, Window: op.window})
		}
		a.opsBuf = ops
		progStart := time.Now()
		batchErrs = bp.ProgramRoutes(ops)
		a.mProgram.Observe(time.Since(progStart))
	}

	var firstErr error
	var set, routeErrs, cleared uint64
	for i, op := range plan {
		var err error
		if batch {
			if batchErrs != nil {
				err = batchErrs[i]
			}
		} else {
			progStart := time.Now()
			err = a.cfg.Routes.SetInitCwnd(op.dst, op.window)
			a.mProgram.Observe(time.Since(progStart))
		}

		sh := a.shardFor(op.dst)
		if err != nil {
			routeErrs++
			if errors.Is(err, ErrFallbackCleared) {
				// The retry decorator gave up and withdrew the route;
				// drop our entry so Lookup reports the kernel default
				// rather than a window that is no longer installed.
				sh.mu.Lock()
				if sh.dropInstalled(a, op.dst) {
					cleared++
				}
				sh.mu.Unlock()
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("set initcwnd %v=%d: %w", op.dst, op.window, err)
			}
			continue
		}
		sh.mu.Lock()
		st := sh.states[op.dst]
		if st == nil {
			st = &destState{}
			sh.states[op.dst] = st
		}
		if !st.installed {
			// New destination: the plan stage could not count its
			// samples because no entry existed yet.
			st.installed = true
			st.samples = uint64(op.obs)
			sh.installed++
		}
		st.window = op.window
		st.expires = now + a.cfg.TTL
		st.updated = now
		st.lastObs = op.obs
		st.merged = false
		st.mergedAge = 0
		st.programs++
		sh.mu.Unlock()
		set++
	}
	a.mu.Lock()
	a.stats.RoutesSet += set
	a.stats.RouteErrors += routeErrs
	a.stats.RoutesCleared += cleared
	a.mu.Unlock()
	return firstErr
}

// clearTargets withdraws the given routes and, for each success, removes
// the entry and forgets its history. A failed withdrawal keeps the entry so
// the next round retries it. Expired targets re-check their deadline under
// the shard lock, so a destination re-observed between collection and
// withdrawal is skipped; guard targets are withdrawn as long as the entry
// still exists (the governor's verdict already decided the round).
func (a *Agent) clearTargets(targets []netip.Prefix, kind clearKind, now time.Duration) error {
	if len(targets) == 0 {
		return nil
	}
	// Re-check which targets still need clearing; filtering in place is
	// safe because targets aliases the agent's scratch for this round.
	live := targets[:0]
	for _, dst := range targets {
		sh := a.shardFor(dst)
		sh.mu.Lock()
		st, ok := sh.states[dst]
		needed := ok && st.installed && (kind == clearKindGuard || st.expires <= now)
		sh.mu.Unlock()
		if needed {
			live = append(live, dst)
		}
	}
	if len(live) == 0 {
		return nil
	}

	bp, batch := a.cfg.Routes.(BatchRouteProgrammer)
	var batchErrs []error
	if batch {
		ops := make([]RouteOp, len(live))
		for i, dst := range live {
			ops[i] = RouteOp{Prefix: dst, Clear: true}
		}
		progStart := time.Now()
		batchErrs = bp.ProgramRoutes(ops)
		a.mProgram.Observe(time.Since(progStart))
	}

	var firstErr error
	var expiredN, clearedN, guardClearedN, routeErrs uint64
	for i, dst := range live {
		var err error
		if batch {
			if batchErrs != nil {
				err = batchErrs[i]
			}
		} else {
			progStart := time.Now()
			err = a.cfg.Routes.ClearInitCwnd(dst)
			a.mProgram.Observe(time.Since(progStart))
		}
		if err != nil {
			routeErrs++
			if firstErr == nil {
				switch kind {
				case clearKindGuard:
					firstErr = fmt.Errorf("guard clear initcwnd %v: %w", dst, err)
				default:
					firstErr = fmt.Errorf("clear initcwnd %v: %w", dst, err)
				}
			}
			continue
		}
		sh := a.shardFor(dst)
		sh.mu.Lock()
		sh.dropInstalled(a, dst)
		sh.mu.Unlock()
		clearedN++
		switch kind {
		case clearKindGuard:
			guardClearedN++
			a.cfg.Metrics.Counter("riptide_guard_clears").Inc()
		default:
			expiredN++
		}
	}
	a.mu.Lock()
	a.stats.RoutesCleared += clearedN
	a.stats.EntriesExpired += expiredN
	a.stats.GuardCleared += guardClearedN
	a.stats.RouteErrors += routeErrs
	a.mu.Unlock()
	return firstErr
}

// expirePass runs only the TTL-expiry portion of a round: collect lapsed
// entries under the shard locks, withdraw their routes outside them.
func (a *Agent) expirePass(now time.Duration) error {
	expired := a.clearBuf[:0]
	for _, sh := range a.shards {
		sh.mu.Lock()
		for dst, st := range sh.states {
			if st.installed && st.expires <= now {
				expired = append(expired, dst)
			}
		}
		sh.mu.Unlock()
	}
	a.clearBuf = expired
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })
	return a.clearTargets(expired, clearKindExpired, now)
}

// breakerBlocks reports whether the sampler circuit breaker suppresses
// sampling this round. Once the cooldown lapses the round is allowed
// through as a probe; its outcome re-arms or closes the breaker. Called
// under tickMu.
func (a *Agent) breakerBlocks(now time.Duration) bool {
	if a.cfg.BreakerThreshold < 0 || !a.breakerOpen {
		return false
	}
	return now < a.breakerUntil
}

// noteSampleFailure records a sampler error and advances the breaker state.
// Called under tickMu.
func (a *Agent) noteSampleFailure(now time.Duration) {
	a.countLocked(func(s *Stats) { s.SampleErrors++ })
	if a.cfg.BreakerThreshold < 0 {
		return
	}
	a.sampleFailures++
	if a.sampleFailures < a.cfg.BreakerThreshold {
		return
	}
	// Threshold crossed, or a half-open probe failed: (re)open.
	if !a.breakerOpen {
		a.countLocked(func(s *Stats) { s.BreakerOpens++ })
		a.cfg.Metrics.Counter("riptide_breaker_opens").Inc()
	}
	a.breakerOpen = true
	a.breakerUntil = now + a.cfg.BreakerCooldown
}

// noteSampleSuccess resets the breaker after a healthy sample. Called under
// tickMu.
func (a *Agent) noteSampleSuccess() {
	a.sampleFailures = 0
	a.breakerOpen = false
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
