package core

import (
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// This file implements the agent's poll round as a three-stage pipeline:
//
//	stage 1 — sample and plan, outside any lock: run the sampler (which may
//	          block for seconds against a wedged `ss`), group observations,
//	          and combine each group. All pure computation.
//	stage 2 — commit, under a short critical section: fold combined values
//	          into history, clamp, refresh TTLs, and decide which routes
//	          need programming and which entries expired. No backend I/O.
//	stage 3 — program, outside the lock again: issue SetInitCwnd /
//	          ClearInitCwnd calls, re-taking the lock only to record each
//	          result. An entry is recorded only after its route is actually
//	          installed, so a failed first program leaves no phantom entry.
//
// tickMu serializes whole rounds (and Close) so the stages of two mutators
// cannot interleave; a.mu is never held across a backend call, so Lookup,
// Entries, and Stats return promptly even mid-round.

// programOp is one planned route installation.
type programOp struct {
	dst    netip.Prefix
	window int
	obs    int // group size this round, recorded on success
}

// Tick executes one iteration of Algorithm 1: sample, group, combine,
// smooth, clamp, program, expire. It returns the first route-programming
// error encountered (after attempting all destinations) or a sampling
// error. While the sampler circuit breaker is open, Tick degrades to an
// expiry-only pass and returns nil; the degradation is visible in Stats.
func (a *Agent) Tick() error {
	start := time.Now()
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	defer func() { a.mTick.Observe(time.Since(start)) }()

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	a.stats.Ticks++
	a.mu.Unlock()

	now := a.cfg.Clock()

	// Stage 1: sample outside any lock.
	if a.breakerBlocks(now) {
		a.countLocked(func(s *Stats) { s.DegradedTicks++ })
		return a.expirePass(now)
	}
	sampleStart := time.Now()
	obs, err := a.cfg.Sampler.SampleConnections()
	a.mSample.Observe(time.Since(sampleStart))
	if err != nil {
		a.noteSampleFailure(now)
		// Expire stale entries even when sampling fails, so a dead
		// sampler cannot pin stale aggressive windows forever.
		if expErr := a.expirePass(now); expErr != nil {
			return fmt.Errorf("sample connections: %v (also: %w)", err, expErr)
		}
		return fmt.Errorf("sample connections: %w", err)
	}
	a.noteSampleSuccess()

	// Group the observed table by destination prefix and combine each
	// group — still pure computation, still lock-free. The governor sees
	// every valid sample here, then closes its round before planning.
	groups := make(map[netip.Prefix][]Observation)
	for _, o := range obs {
		if o.Cwnd <= 0 || !o.Dst.IsValid() {
			continue
		}
		key, err := a.destKey(o.Dst)
		if err != nil {
			continue
		}
		if a.cfg.Guard != nil {
			a.cfg.Guard.ObserveSample(key, o)
		}
		groups[key] = append(groups[key], o)
	}
	if a.cfg.Guard != nil {
		a.cfg.Guard.ObserveTick(now)
	}
	type combinedGroup struct {
		value float64
		n     int
	}
	combined := make(map[netip.Prefix]combinedGroup, len(groups))
	for dst, group := range groups {
		combined[dst] = combinedGroup{value: a.cfg.Combiner.Combine(group), n: len(group)}
	}

	// Stage 2: commit state under a short critical section.
	a.mu.Lock()
	a.stats.Observations += uint64(len(obs))
	plan := make([]programOp, 0, len(combined))
	var guardClears []netip.Prefix
	for dst, g := range combined {
		if !isFinite(g.value) {
			// A custom Combiner produced NaN/±Inf: skip the round for
			// this destination rather than folding garbage into history
			// (an EWMA never recovers from a NaN).
			a.stats.CombinerRejects++
			a.cfg.Metrics.Counter("riptide_combiner_rejects").Inc()
			continue
		}
		smoothed := a.cfg.History.Update(dst, g.value)
		if a.cfg.Advisor != nil {
			if m := a.cfg.Advisor.Advise(dst); isFinite(m) {
				smoothed *= m
			} else {
				a.cfg.Metrics.Counter("riptide_advisor_rejects").Inc()
			}
		}
		final := a.clamp(smoothed)

		if a.cfg.Guard != nil {
			capped, action := a.cfg.Guard.Review(dst, final)
			switch action {
			case GuardVeto, GuardQuarantine:
				a.stats.GuardVetoed++
				if action == GuardQuarantine {
					a.stats.GuardQuarantined++
				}
				// An installed route for a held-back destination is
				// withdrawn (outside the lock, in stage 3). The entry
				// is only dropped once the clear succeeds, so a failed
				// withdrawal retries next round.
				if _, installed := a.entries[dst]; installed {
					guardClears = append(guardClears, dst)
				}
				continue
			case GuardCap:
				if capped < final {
					if capped < a.cfg.CMin {
						capped = a.cfg.CMin
					}
					if capped < final {
						final = capped
						a.stats.GuardCapped++
					}
				}
			}
		}

		e, ok := a.entries[dst]
		if ok {
			// The route is installed; fresh observations extend its
			// life even if programming the new value fails below.
			e.expires = now + a.cfg.TTL
			e.updated = now
			e.lastObs = g.n
			e.samples += uint64(g.n)
			// A local observation confirms (and from now on owns) an
			// entry that was seeded from a fleet snapshot.
			e.merged = false
			e.mergedAge = 0
			if e.window != final {
				plan = append(plan, programOp{dst: dst, window: final, obs: g.n})
			}
		} else {
			// New destination: the entry is recorded in stage 3,
			// only once the route is actually installed.
			plan = append(plan, programOp{dst: dst, window: final, obs: g.n})
		}
	}
	expired := a.collectExpiredLocked(now)
	a.mu.Unlock()

	// Sort the plan so programming order (and thus first-error identity)
	// is deterministic rather than map-iteration dependent.
	sort.Slice(plan, func(i, j int) bool { return lessPrefix(plan[i].dst, plan[j].dst) })
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })
	sort.Slice(guardClears, func(i, j int) bool { return lessPrefix(guardClears[i], guardClears[j]) })

	// Stage 3: program routes outside the lock.
	var firstErr error
	for _, op := range plan {
		progStart := time.Now()
		err := a.cfg.Routes.SetInitCwnd(op.dst, op.window)
		a.mProgram.Observe(time.Since(progStart))

		a.mu.Lock()
		if err != nil {
			a.stats.RouteErrors++
			if errors.Is(err, ErrFallbackCleared) {
				// The retry decorator gave up and withdrew the
				// route; drop our entry so Lookup reports the
				// kernel default rather than a window that is
				// no longer installed.
				if _, ok := a.entries[op.dst]; ok {
					delete(a.entries, op.dst)
					a.cfg.History.Forget(op.dst)
					a.stats.RoutesCleared++
				}
			}
			a.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("set initcwnd %v=%d: %w", op.dst, op.window, err)
			}
			continue
		}
		e, ok := a.entries[op.dst]
		if !ok {
			// New destination: stage 2 could not count its samples
			// because the entry did not exist yet.
			e = &entry{samples: uint64(op.obs)}
			a.entries[op.dst] = e
		}
		e.window = op.window
		e.expires = now + a.cfg.TTL
		e.updated = now
		e.lastObs = op.obs
		e.merged = false
		e.mergedAge = 0
		e.programs++
		a.stats.RoutesSet++
		a.mu.Unlock()
	}

	if err := a.clearGuardVetoed(guardClears); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.clearRoutes(expired, now); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// clearGuardVetoed withdraws routes the governor vetoed or quarantined this
// round. Each entry is dropped only once its route is actually cleared, so
// the withdrawal happens exactly once per quarantine: after success the entry
// is gone and later vetoes have nothing to clear; after a failure the entry
// survives and the next round's veto retries.
func (a *Agent) clearGuardVetoed(targets []netip.Prefix) error {
	var firstErr error
	for _, dst := range targets {
		a.mu.Lock()
		_, ok := a.entries[dst]
		a.mu.Unlock()
		if !ok {
			continue
		}

		progStart := time.Now()
		err := a.cfg.Routes.ClearInitCwnd(dst)
		a.mProgram.Observe(time.Since(progStart))

		a.mu.Lock()
		if err != nil {
			a.stats.RouteErrors++
			a.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("guard clear initcwnd %v: %w", dst, err)
			}
			continue
		}
		delete(a.entries, dst)
		a.cfg.History.Forget(dst)
		a.stats.RoutesCleared++
		a.stats.GuardCleared++
		a.mu.Unlock()
		a.cfg.Metrics.Counter("riptide_guard_clears").Inc()
	}
	return firstErr
}

// expirePass runs only the TTL-expiry portion of a round: collect lapsed
// entries under the lock, withdraw their routes outside it.
func (a *Agent) expirePass(now time.Duration) error {
	a.mu.Lock()
	expired := a.collectExpiredLocked(now)
	a.mu.Unlock()
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })
	return a.clearRoutes(expired, now)
}

// collectExpiredLocked returns the destinations whose TTL lapsed. Callers
// hold a.mu. Entries observed this round were just refreshed, so they never
// appear here.
func (a *Agent) collectExpiredLocked(now time.Duration) []netip.Prefix {
	var expired []netip.Prefix
	for dst, e := range a.entries {
		if e.expires <= now {
			expired = append(expired, dst)
		}
	}
	return expired
}

// clearRoutes withdraws the given routes and, for each success, removes the
// entry and forgets its history. A failed withdrawal keeps the entry so the
// next round retries it (unless it was re-observed meanwhile). A destination
// that was re-observed and re-programmed between collection and withdrawal
// is skipped via the expiry re-check.
func (a *Agent) clearRoutes(expired []netip.Prefix, now time.Duration) error {
	var firstErr error
	for _, dst := range expired {
		a.mu.Lock()
		e, ok := a.entries[dst]
		if !ok || e.expires > now {
			a.mu.Unlock()
			continue
		}
		a.mu.Unlock()

		progStart := time.Now()
		err := a.cfg.Routes.ClearInitCwnd(dst)
		a.mProgram.Observe(time.Since(progStart))

		a.mu.Lock()
		if err != nil {
			a.stats.RouteErrors++
			a.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("clear initcwnd %v: %w", dst, err)
			}
			continue
		}
		delete(a.entries, dst)
		a.cfg.History.Forget(dst)
		a.stats.EntriesExpired++
		a.stats.RoutesCleared++
		a.mu.Unlock()
	}
	return firstErr
}

// breakerBlocks reports whether the sampler circuit breaker suppresses
// sampling this round. Once the cooldown lapses the round is allowed
// through as a probe; its outcome re-arms or closes the breaker. Called
// under tickMu.
func (a *Agent) breakerBlocks(now time.Duration) bool {
	if a.cfg.BreakerThreshold < 0 || !a.breakerOpen {
		return false
	}
	return now < a.breakerUntil
}

// noteSampleFailure records a sampler error and advances the breaker state.
// Called under tickMu.
func (a *Agent) noteSampleFailure(now time.Duration) {
	a.countLocked(func(s *Stats) { s.SampleErrors++ })
	if a.cfg.BreakerThreshold < 0 {
		return
	}
	a.sampleFailures++
	if a.sampleFailures < a.cfg.BreakerThreshold {
		return
	}
	// Threshold crossed, or a half-open probe failed: (re)open.
	if !a.breakerOpen {
		a.countLocked(func(s *Stats) { s.BreakerOpens++ })
		a.cfg.Metrics.Counter("riptide_breaker_opens").Inc()
	}
	a.breakerOpen = true
	a.breakerUntil = now + a.cfg.BreakerCooldown
}

// noteSampleSuccess resets the breaker after a healthy sample. Called under
// tickMu.
func (a *Agent) noteSampleSuccess() {
	a.sampleFailures = 0
	a.breakerOpen = false
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
