package core

import (
	"errors"
	"fmt"
	"math"
	"net/netip"
	"slices"
	"sort"
	"time"
)

// This file implements the agent's poll round as a four-stage pipeline:
//
//	sample  — outside any lock: run the sampler (which may block for
//	          seconds against a wedged `ss`) into a pooled buffer.
//	plan    — fanned out over the state shards: validate and route each
//	          observation to its shard (ingest), then per shard regroup,
//	          combine, smooth, clamp, review, refresh TTLs, and emit the
//	          shard's route plan. Workers touch disjoint shards, so the
//	          only shared state is each shard's own lock.
//	commit  — a short global section: merge the per-shard plans, sort
//	          them for deterministic programming order, and fold the
//	          shards' stat deltas into Stats.
//	program — outside the locks again: apply the whole plan through the
//	          BatchRouteProgrammer when the backend offers one (a single
//	          `ip -batch` exec / one kernel lock acquisition), falling
//	          back to per-op SetInitCwnd / ClearInitCwnd calls. Each
//	          shard lock is re-taken only to record results. An entry is
//	          recorded only after its route is actually installed, so a
//	          failed first program leaves no phantom entry.
//
// tickMu serializes whole rounds (and Close) so the stages of two mutators
// cannot interleave; no shard lock is held across a backend call, so Lookup,
// Entries, and Stats return promptly even mid-round. The merged plan is
// sorted by prefix before programming, so the agent's output — route ops,
// their order, and first-error identity — is byte-identical for every shard
// and worker count.

// programOp is one planned route installation.
type programOp struct {
	dst    netip.Prefix
	window int
	obs    int // group size this round, recorded on success
	// st and shard let the commit stage reach the destination's state
	// without re-hashing and re-resolving the prefix. st may be nil
	// (aggregate parent ops); the commit stage trusts it only while it is
	// still the installed map occupant, falling back to the map otherwise.
	// Plan ops never outlive their tick, so the pointer cannot go stale.
	st    *destState
	shard int32
	// aggregate marks a covering-route installation planned by the
	// aggregate pass; committing it marks the aggState installed.
	aggregate bool
	// split marks the reinstallation of an absorbed child whose window
	// diverged from its aggregate; committing it counts AggregateSplits.
	split bool
}

// clearKind distinguishes why a route withdrawal was planned, which decides
// the stats it bumps and whether expiry is re-checked before clearing.
type clearKind int

const (
	clearKindExpired clearKind = iota
	clearKindGuard
	// clearKindAbsorb withdraws a child route now covered by an installed
	// aggregate; the state is kept (marked absorbed), not dropped.
	clearKindAbsorb
	// clearKindDissolve withdraws a covering aggregate route after its
	// members were reinstalled (or lapsed).
	clearKindDissolve
)

// Tick executes one iteration of Algorithm 1: sample, group, combine,
// smooth, clamp, program, expire. It returns the first route-programming
// error encountered (after attempting all destinations) or a sampling
// error. While the sampler circuit breaker is open, Tick degrades to an
// expiry-only pass and returns nil; the degradation is visible in Stats.
func (a *Agent) Tick() error {
	start := time.Now()
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	defer func() { a.mTick.Observe(time.Since(start)) }()

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	a.stats.Ticks++
	a.mu.Unlock()
	// The plan stage stamps destStates with this sequence to detect "first
	// touch this tick" without clearing per-tick fields across the table.
	a.tickSeq++

	now := a.cfg.Clock()

	// Sample stage, outside any lock.
	if a.breakerBlocks(now) {
		a.countLocked(func(s *Stats) { s.DegradedTicks++ })
		return a.expirePass(now)
	}
	sampleStart := time.Now()
	obs, err := a.cfg.Sampler.SampleConnections(a.obsBuf[:0])
	a.mSample.Observe(time.Since(sampleStart))
	if err != nil {
		a.noteSampleFailure(now)
		// Expire stale entries even when sampling fails, so a dead
		// sampler cannot pin stale aggressive windows forever.
		if expErr := a.expirePass(now); expErr != nil {
			return fmt.Errorf("sample connections: %v (also: %w)", err, expErr)
		}
		return fmt.Errorf("sample connections: %w", err)
	}
	if obs != nil {
		a.obsBuf = obs // keep the grown buffer for the next round
	}
	a.noteSampleSuccess()

	// Delta setup: size this round's sample cache, and detect a stream
	// that is literally last round's slice (a sampler with a fixed set
	// returning its own backing array). Such a round can skip ingest
	// entirely — and, per shard, the grouping passes (see planShard) —
	// unless a governor needs to see every sample or a shard's retained
	// scratch was invalidated.
	identStream := false
	if a.delta {
		if cap(a.cacheCur) < len(obs) {
			a.cacheCur = make([]cachedSample, len(obs))
		} else {
			a.cacheCur = a.cacheCur[:cap(a.cacheCur)]
		}
		identStream = a.havePrev && len(obs) > 0 && len(obs) == len(a.obsPrev) && &obs[0] == &a.obsPrev[0]
	}
	a.identTick = identStream
	skipIngest := identStream && a.cfg.Guard == nil
	if skipIngest {
		for _, sh := range a.shards {
			if !sh.planValid {
				skipIngest = false
				break
			}
		}
	}

	// Plan stage: route observations to shards, then plan each shard.
	// Small rounds stay serial — goroutines cost more than they save.
	planStart := time.Now()
	nShards := len(a.shards)
	workers := 1
	if nShards > 1 && len(obs) >= parallelThreshold {
		workers = nShards
	}

	// Stable-round detection (the quiescent fast path): with an eligible
	// config, a retained rebuild on every shard, and a stream of unchanged
	// length, compare this round's sample against last round's. If every
	// position kept its destination and validity, group membership is
	// provably unchanged — ingest and regroup are skipped and each shard
	// patches only its dirty groups and still-converging states. Any
	// membership change falls back to the full path below, which resets the
	// (possibly partially filled) buckets itself.
	stable := false
	if a.quiescentOK && a.havePrev && len(obs) > 0 && len(obs) == len(a.obsPrev) {
		allValid := true
		for _, sh := range a.shards {
			if !sh.planValid {
				allValid = false
				break
			}
		}
		if allValid {
			a.ingestWorkers = workers
			for i := 0; i < workers*nShards; i++ {
				a.buckets[i] = a.buckets[i][:0]
			}
			switch {
			case identStream:
				stable = true
			case workers > 1:
				runParallel(workers, func(w int) { a.compareOK[w] = a.compareChunk(w, obs) })
				stable = true
				for w := 0; w < workers; w++ {
					if !a.compareOK[w] {
						stable = false
						break
					}
				}
			default:
				stable = a.compareChunk(0, obs)
			}
		}
	}

	if stable {
		if workers > 1 {
			runParallel(nShards, func(s int) { a.planShardQuiescent(s, obs, now) })
		} else {
			for s := 0; s < nShards; s++ {
				a.planShardQuiescent(s, obs, now)
			}
		}
	} else {
		if !skipIngest {
			a.ingestWorkers = workers
			for i := 0; i < workers*nShards; i++ {
				a.buckets[i] = a.buckets[i][:0]
			}
			runParallel(workers, func(w int) { a.ingestChunk(w, obs) })
		}
		// The governor sees every valid sample above, then closes its
		// round before any Review call.
		if a.cfg.Guard != nil {
			a.cfg.Guard.ObserveTick(now)
		}
		if workers > 1 {
			runParallel(nShards, func(s int) { a.planShard(s, obs, now) })
		} else {
			for s := 0; s < nShards; s++ {
				a.planShard(s, obs, now)
			}
		}
	}
	a.mPlan.Observe(time.Since(planStart))

	// Commit stage: merge the per-shard plans deterministically and fold
	// the stat deltas — the only remaining global critical section.
	commitStart := time.Now()
	var plan []programOp
	if len(a.shards) == 1 {
		// One shard: adopt its plan in place rather than copying ~150-byte
		// ops through the merge buffer (the shard rebuilds it next round).
		plan = a.shards[0].plan
	} else {
		plan = a.planBuf[:0]
		for _, sh := range a.shards {
			plan = append(plan, sh.plan...)
		}
		a.planBuf = plan
	}
	clears := a.clearBuf[:0]
	var delta tickDelta
	for _, sh := range a.shards {
		clears = append(clears, sh.guardClears...)
		delta.add(sh.delta)
		sh.delta = tickDelta{}
	}
	expiredStart := len(clears)
	for _, sh := range a.shards {
		clears = append(clears, sh.expired...)
	}
	absorbStart := len(clears)
	for _, sh := range a.shards {
		clears = append(clears, sh.absorbs...)
	}
	dissolveStart := len(clears)
	for _, sh := range a.shards {
		clears = append(clears, sh.dissolves...)
	}
	a.clearBuf = clears
	guardClears := clears[:expiredStart]
	expired := clears[expiredStart:absorbStart]
	absorbs := clears[absorbStart:dissolveStart]
	dissolves := clears[dissolveStart:]
	// The plan comparator is total (dst, then window, then flags): the
	// same destination can legitimately carry two byte-identical-dst ops
	// in one round (a pass-3 split plus a dissolve reinstall), and an
	// unstable sort must still order them deterministically.
	planIdx := a.sortPlan(plan)
	sort.Slice(guardClears, func(i, j int) bool { return lessPrefix(guardClears[i], guardClears[j]) })
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })
	sort.Slice(absorbs, func(i, j int) bool { return lessPrefix(absorbs[i], absorbs[j]) })
	sort.Slice(dissolves, func(i, j int) bool { return lessPrefix(dissolves[i], dissolves[j]) })

	a.mu.Lock()
	a.stats.Observations += uint64(len(obs))
	a.stats.CombinerRejects += delta.combinerRejects
	a.stats.GuardCapped += delta.guardCapped
	a.stats.GuardVetoed += delta.guardVetoed
	a.stats.GuardQuarantined += delta.guardQuarantined
	a.stats.EntriesExpired += delta.expiredDropped
	a.mu.Unlock()
	if delta.combinerRejects > 0 {
		a.cfg.Metrics.Counter("riptide_combiner_rejects").Add(delta.combinerRejects)
	}
	if delta.advisorRejects > 0 {
		a.cfg.Metrics.Counter("riptide_advisor_rejects").Add(delta.advisorRejects)
	}
	a.mCommit.Observe(time.Since(commitStart))

	// Retain this round's stream as the next round's delta baseline. The
	// sample buffer hand-off keeps the invariant that obsPrev and obsBuf
	// never share a backing array: next round's sample appends into the
	// retiring buffer (or fresh space) while obsPrev stays frozen.
	if a.delta {
		// A stable round never re-keys: positions are unchanged, so last
		// round's cache stays authoritative and is not swapped out.
		if !skipIngest && !stable {
			a.cachePrev, a.cacheCur = a.cacheCur, a.cachePrev
		}
		prevScratch := a.obsPrev
		a.obsPrev = obs
		a.havePrev = true
		if sameBacking(obs, prevScratch) {
			a.obsBuf = nil
		} else {
			a.obsBuf = prevScratch[:0]
		}
	}

	// Program stage, outside the locks. Sets run first, so dissolve
	// reinstalls precede the covering-route withdrawal and absorb clears
	// follow their aggregate's installation — LPM coverage never gaps.
	firstErr := a.programPlan(plan, planIdx, now)
	if err := a.clearTargets(absorbs, clearKindAbsorb, now); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.clearTargets(guardClears, clearKindGuard, now); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.clearTargets(dissolves, clearKindDissolve, now); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.clearTargets(expired, clearKindExpired, now); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// planKey pairs a packed comparator key with the op's index in the
// unsorted plan, so the commit sort can order 8-byte keys instead of
// swapping 64-byte ops through a reflective comparator.
type planKey struct {
	key uint64
	idx int32
}

// packOpKey encodes every field lessProgramOp consults — IPv4 address,
// prefix length, window, split, aggregate — into one uint64 whose unsigned
// order equals the comparator's. It refuses anything it cannot encode
// exactly (IPv6 and 4-in-6 addresses, windows outside a byte); the caller
// then falls back to the comparator sort.
func packOpKey(op *programOp) (uint64, bool) {
	addr := op.dst.Addr()
	if !addr.Is4() || op.window < 0 || op.window > 0xff {
		return 0, false
	}
	b := addr.As4()
	k := uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 | uint64(b[3])<<16
	k |= uint64(op.dst.Bits()) << 10
	k |= uint64(op.window) << 2
	if op.split {
		k |= 2
	}
	if op.aggregate {
		k |= 1
	}
	return k, true
}

// sortPlan orders the merged plan by lessProgramOp without moving the ops.
// An all-IPv4 plan — the overwhelmingly common case — gets its packed
// 8-byte keys sorted and returned; the caller walks the plan through that
// index order. Plans with anything unpackable are comparator-sorted in
// place and get a nil key slice. Key ties break on emission index, which
// only matters for ops equal in every field the comparator sees (and
// therefore interchangeable anyway).
func (a *Agent) sortPlan(plan []programOp) []planKey {
	keys := a.planKeys[:0]
	packed := true
	for i := range plan {
		k, ok := packOpKey(&plan[i])
		if !ok {
			packed = false
			break
		}
		keys = append(keys, planKey{key: k, idx: int32(i)})
	}
	a.planKeys = keys
	if !packed {
		sort.Slice(plan, func(i, j int) bool { return lessProgramOp(plan[i], plan[j]) })
		return nil
	}
	if len(keys) < 128 {
		slices.SortFunc(keys, func(x, y planKey) int {
			switch {
			case x.key < y.key:
				return -1
			case x.key > y.key:
				return 1
			default:
				return int(x.idx - y.idx)
			}
		})
		return keys
	}
	return a.radixSortPlanKeys(keys)
}

// radixSortPlanKeys stable-sorts keys by packed key ascending with LSD
// counting passes over the 48 significant bits, one byte at a time. The
// stability makes the emission-index tie-break implicit, so the order is
// identical to the comparison sort above; passes whose digit is constant
// across the whole plan (the top address bytes usually are) are skipped.
func (a *Agent) radixSortPlanKeys(keys []planKey) []planKey {
	tmp := a.planKeysTmp
	if cap(tmp) < len(keys) {
		tmp = make([]planKey, len(keys))
	}
	tmp = tmp[:len(keys)]
	src, dst := keys, tmp
	var count [256]int
	for shift := uint(0); shift < 48; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for i := range src {
			count[(src[i].key>>shift)&0xff]++
		}
		if count[(src[0].key>>shift)&0xff] == len(src) {
			continue
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].key >> shift) & 0xff
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	a.planKeys = src
	a.planKeysTmp = dst
	return src
}

// lessProgramOp is the total order for the round's merged plan: prefix
// first, then window, then the split/aggregate flags as tie-breakers.
func lessProgramOp(a, b programOp) bool {
	if a.dst != b.dst {
		return lessPrefix(a.dst, b.dst)
	}
	if a.window != b.window {
		return a.window < b.window
	}
	if a.split != b.split {
		return !a.split
	}
	return !a.aggregate && b.aggregate
}

// sameBacking reports whether two slices share a backing array (checked via
// their first element at full capacity).
func sameBacking(a, b []Observation) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:cap(a)][0] == &b[:cap(b)][0]
}

// programPlan installs the round's route plan — through one batch call when
// the backend supports it — and commits each success into its shard. keys,
// when non-nil, gives the sorted program order as indices into plan (which
// then stays unsorted); a nil keys means plan itself is already ordered.
func (a *Agent) programPlan(plan []programOp, keys []planKey, now time.Duration) error {
	if len(plan) == 0 {
		return nil
	}
	opAt := func(i int) *programOp {
		if keys != nil {
			return &plan[keys[i].idx]
		}
		return &plan[i]
	}
	bp, batch := a.cfg.Routes.(BatchRouteProgrammer)
	var batchErrs []error
	if batch {
		ops := a.opsBuf[:0]
		for i := range plan {
			op := opAt(i)
			ops = append(ops, RouteOp{Prefix: op.dst, Window: op.window})
		}
		a.opsBuf = ops
		progStart := time.Now()
		batchErrs = bp.ProgramRoutes(ops)
		a.mProgram.Observe(time.Since(progStart))
	}

	var firstErr error
	var set, routeErrs, cleared, formed, splits uint64
	// The shard lock is held across runs of consecutive same-shard ops
	// (with one shard, the whole plan) instead of being retaken per op.
	// Nothing blocking happens while it is held: batch errors are already
	// in hand, and the per-op SetInitCwnd path releases it first.
	var cur *shard
	unlockCur := func() {
		if cur != nil {
			cur.mu.Unlock()
			cur = nil
		}
	}
	defer unlockCur()
	for i := range plan {
		op := opAt(i)
		var err error
		if batch {
			if batchErrs != nil {
				err = batchErrs[i]
			}
		} else {
			unlockCur()
			progStart := time.Now()
			err = a.cfg.Routes.SetInitCwnd(op.dst, op.window)
			a.mProgram.Observe(time.Since(progStart))
		}

		sh := a.shards[op.shard]
		if err != nil {
			unlockCur()
			routeErrs++
			if errors.Is(err, ErrFallbackCleared) {
				// The retry decorator gave up and withdrew the route;
				// drop our entry so Lookup reports the kernel default
				// rather than a window that is no longer installed.
				sh.mu.Lock()
				if sh.dropInstalled(a, op.dst) {
					cleared++
				}
				sh.mu.Unlock()
			} else if op.aggregate {
				// A failed covering-route install leaves the children in
				// place; re-mark the parent so the formation retries.
				sh.mu.Lock()
				if agg := sh.aggs[op.dst]; agg != nil {
					a.aggMarkDirty(sh, op.dst, agg)
				}
				sh.mu.Unlock()
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("set initcwnd %v=%d: %w", op.dst, op.window, err)
			}
			continue
		}
		if sh != cur {
			unlockCur()
			sh.mu.Lock()
			cur = sh
		}
		// The planned state pointer short-circuits the map for the common
		// commit (a window change on an installed route). A state that lost
		// its installed flag since planning (an ErrFallbackCleared drop of
		// an earlier duplicate op) may no longer be the map occupant, so it
		// re-resolves.
		st := op.st
		if st == nil || !st.installed {
			st = sh.states[op.dst]
			if st == nil {
				st = sh.newDestState()
				sh.states[op.dst] = st
				a.aggRegister(sh, op.dst, st)
			}
		}
		wasInstalled := st.installed
		if !st.installed {
			st.installed = true
			sh.installed++
			if st.absorbed {
				// An absorbed child got its specific route back (window
				// divergence, or a dissolve reinstall); its accumulated
				// samples carry over.
				st.absorbed = false
				if op.split {
					splits++
				}
			} else {
				// New destination: the plan stage could not count its
				// samples because no entry existed yet.
				st.samples = uint64(op.obs)
			}
		}
		st.window = op.window
		st.expires = now + a.cfg.TTL
		st.updated = now
		st.lastObs = op.obs
		st.merged = false
		st.mergedAge = 0
		st.programs++
		st.version = a.bumpVersion()
		if wasInstalled {
			a.digestRefold(op.dst, st)
		} else {
			a.digestFold(op.dst, st)
		}
		sh.noteExpiry(st.expires)
		if op.aggregate {
			if agg := sh.aggs[op.dst]; agg != nil && !agg.installed {
				agg.installed = true
				agg.window = op.window
				formed++
			}
		} else if parent, ok := a.aggKey(op.dst); ok {
			// A child install or window change can alter its aggregate's
			// membership maths; queue the parent for re-evaluation.
			if agg := sh.aggs[parent]; agg != nil {
				a.aggMarkDirty(sh, parent, agg)
			}
		}
		set++
	}
	unlockCur()
	a.mu.Lock()
	a.stats.RoutesSet += set
	a.stats.RouteErrors += routeErrs
	a.stats.RoutesCleared += cleared
	a.stats.AggregatesFormed += formed
	a.stats.AggregateSplits += splits
	a.mu.Unlock()
	return firstErr
}

// clearTargets withdraws the given routes and, for each success, removes
// the entry and forgets its history. A failed withdrawal keeps the entry so
// the next round retries it. Expired targets re-check their deadline under
// the shard lock, so a destination re-observed between collection and
// withdrawal is skipped; guard targets are withdrawn as long as the entry
// still exists (the governor's verdict already decided the round).
func (a *Agent) clearTargets(targets []netip.Prefix, kind clearKind, now time.Duration) error {
	if len(targets) == 0 {
		return nil
	}
	// Re-check which targets still need clearing; filtering in place is
	// safe because targets aliases the agent's scratch for this round.
	live := targets[:0]
	for _, dst := range targets {
		sh := a.shardFor(dst)
		sh.mu.Lock()
		st, ok := sh.states[dst]
		var needed bool
		switch kind {
		case clearKindAbsorb:
			// Withdraw the child only while its covering route is actually
			// installed — a failed aggregate install must not strand the
			// child without any route.
			needed = ok && st.installed
			if needed {
				parent, pok := a.aggKey(dst)
				agg := sh.aggs[parent]
				needed = pok && agg != nil && agg.installed
			}
		case clearKindDissolve, clearKindGuard:
			needed = ok && st.installed
		default:
			needed = ok && st.installed && st.expires <= now
		}
		sh.mu.Unlock()
		if needed {
			live = append(live, dst)
		}
	}
	if len(live) == 0 {
		return nil
	}

	bp, batch := a.cfg.Routes.(BatchRouteProgrammer)
	var batchErrs []error
	if batch {
		ops := make([]RouteOp, len(live))
		for i, dst := range live {
			ops[i] = RouteOp{Prefix: dst, Clear: true}
		}
		progStart := time.Now()
		batchErrs = bp.ProgramRoutes(ops)
		a.mProgram.Observe(time.Since(progStart))
	}

	var firstErr error
	var expiredN, clearedN, guardClearedN, routeErrs uint64
	var absorbedN, dissolvedN uint64
	for i, dst := range live {
		var err error
		if batch {
			if batchErrs != nil {
				err = batchErrs[i]
			}
		} else {
			progStart := time.Now()
			err = a.cfg.Routes.ClearInitCwnd(dst)
			a.mProgram.Observe(time.Since(progStart))
		}
		sh := a.shardFor(dst)
		if err != nil {
			routeErrs++
			if kind == clearKindAbsorb || kind == clearKindDissolve {
				// Leave the route as-is and re-mark the aggregate so the
				// next round re-derives (and retries) the decision.
				key := dst
				if kind == clearKindAbsorb {
					if parent, ok := a.aggKey(dst); ok {
						key = parent
					}
				}
				sh.mu.Lock()
				if agg := sh.aggs[key]; agg != nil {
					a.aggMarkDirty(sh, key, agg)
				}
				sh.mu.Unlock()
			}
			if firstErr == nil {
				switch kind {
				case clearKindGuard:
					firstErr = fmt.Errorf("guard clear initcwnd %v: %w", dst, err)
				case clearKindAbsorb:
					firstErr = fmt.Errorf("absorb clear initcwnd %v: %w", dst, err)
				case clearKindDissolve:
					firstErr = fmt.Errorf("dissolve clear initcwnd %v: %w", dst, err)
				default:
					firstErr = fmt.Errorf("clear initcwnd %v: %w", dst, err)
				}
			}
			continue
		}
		sh.mu.Lock()
		if kind == clearKindAbsorb {
			// The covering route now serves this child; keep the state so
			// it goes on sampling and refreshing, but stop counting it as
			// an installed route.
			if st := sh.states[dst]; st != nil && st.installed {
				a.digestUnfold(st)
				st.installed = false
				st.absorbed = true
				sh.installed--
				absorbedN++
				// The child leaves the exported table (only specific
				// installed entries are shared); move the version so
				// delta peers notice.
				a.bumpVersion()
			}
		} else {
			sh.dropInstalled(a, dst)
			if kind == clearKindDissolve {
				dissolvedN++
			}
		}
		sh.mu.Unlock()
		clearedN++
		switch kind {
		case clearKindGuard:
			guardClearedN++
			a.cfg.Metrics.Counter("riptide_guard_clears").Inc()
		case clearKindExpired:
			expiredN++
		}
	}
	a.mu.Lock()
	a.stats.RoutesCleared += clearedN
	a.stats.EntriesExpired += expiredN
	a.stats.GuardCleared += guardClearedN
	a.stats.RouteErrors += routeErrs
	a.stats.ChildrenAbsorbed += absorbedN
	a.stats.AggregatesDissolved += dissolvedN
	a.mu.Unlock()
	return firstErr
}

// expirePass runs only the TTL-expiry portion of a round: collect lapsed
// entries under the shard locks, withdraw their routes outside them. Shards
// whose next-expiry bound has not been reached are skipped without touching
// a single state, so a no-op expiry round costs O(shards).
func (a *Agent) expirePass(now time.Duration) error {
	expired := a.clearBuf[:0]
	var dropped uint64
	for _, sh := range a.shards {
		sh.mu.Lock()
		if sh.nextExpiry <= now {
			sh.expired = sh.expired[:0]
			dropped += a.sweepExpiredLocked(sh, now)
			expired = append(expired, sh.expired...)
		}
		sh.mu.Unlock()
	}
	a.clearBuf = expired
	if dropped > 0 {
		a.countLocked(func(s *Stats) { s.EntriesExpired += dropped })
	}
	sort.Slice(expired, func(i, j int) bool { return lessPrefix(expired[i], expired[j]) })
	return a.clearTargets(expired, clearKindExpired, now)
}

// breakerBlocks reports whether the sampler circuit breaker suppresses
// sampling this round. Once the cooldown lapses the round is allowed
// through as a probe; its outcome re-arms or closes the breaker. Called
// under tickMu.
func (a *Agent) breakerBlocks(now time.Duration) bool {
	if a.cfg.BreakerThreshold < 0 || !a.breakerOpen {
		return false
	}
	return now < a.breakerUntil
}

// noteSampleFailure records a sampler error and advances the breaker state.
// Called under tickMu.
func (a *Agent) noteSampleFailure(now time.Duration) {
	a.countLocked(func(s *Stats) { s.SampleErrors++ })
	if a.cfg.BreakerThreshold < 0 {
		return
	}
	a.sampleFailures++
	if a.sampleFailures < a.cfg.BreakerThreshold {
		return
	}
	// Threshold crossed, or a half-open probe failed: (re)open.
	if !a.breakerOpen {
		a.countLocked(func(s *Stats) { s.BreakerOpens++ })
		a.cfg.Metrics.Counter("riptide_breaker_opens").Inc()
	}
	a.breakerOpen = true
	a.breakerUntil = now + a.cfg.BreakerCooldown
}

// noteSampleSuccess resets the breaker after a healthy sample. Called under
// tickMu.
func (a *Agent) noteSampleSuccess() {
	a.sampleFailures = 0
	a.breakerOpen = false
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
