package core

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// TestAgentStateMachineProperty drives the agent through random sequences of
// observation rounds and clock jumps and checks the global invariants that
// must hold after every tick:
//
//  1. The programmed route set exactly mirrors the agent's entries.
//  2. Every programmed window is within [CMin, CMax].
//  3. No entry outlives TTL without fresh observations.
//  4. Lookup agrees with the programmed routes.
func TestAgentStateMachineProperty(t *testing.T) {
	type step struct {
		// Destinations observed this round, as indexes into a fixed
		// pool; window values derived from raw bytes.
		DstIdx  []uint8
		Cwnds   []uint8
		Advance uint16 // seconds to advance before the tick
	}
	pool := make([]netip.Addr, 8)
	for i := range pool {
		pool[i] = netip.AddrFrom4([4]byte{10, 0, byte(i), 1})
	}

	f := func(steps []step, cminRaw, spanRaw uint8) bool {
		cmin := int(cminRaw%20) + 1
		cmax := cmin + int(spanRaw%100) + 1
		ttl := 90 * time.Second

		clock := &fakeClock{}
		routes := newFakeRoutes()
		sampler := &fakeSampler{}
		a, err := New(Config{
			Sampler: sampler,
			Routes:  routes,
			Clock:   clock.fn(),
			CMin:    cmin,
			CMax:    cmax,
			TTL:     ttl,
		})
		if err != nil {
			return false
		}

		// lastSeen tracks when each destination was last observed, to
		// verify TTL expiry independently of the agent's bookkeeping.
		lastSeen := map[netip.Prefix]time.Duration{}

		for _, st := range steps {
			if len(st.DstIdx) > 16 {
				st.DstIdx = st.DstIdx[:16]
			}
			clock.Advance(time.Duration(st.Advance%200) * time.Second)
			var obs []Observation
			for i, di := range st.DstIdx {
				cw := 1
				if i < len(st.Cwnds) {
					cw = int(st.Cwnds[i])%300 + 1
				}
				dst := pool[int(di)%len(pool)]
				obs = append(obs, Observation{Dst: dst, Cwnd: cw})
				lastSeen[netip.PrefixFrom(dst, 32)] = clock.Now()
			}
			sampler.rounds = [][]Observation{obs}
			sampler.i = 0
			if err := a.Tick(); err != nil {
				return false
			}

			now := clock.Now()
			entries := a.Entries()

			// Invariant 1: routes == entries, window for window.
			if len(routes.set) != len(entries) {
				return false
			}
			for _, e := range entries {
				w, ok := routes.set[e.Prefix]
				if !ok || w != e.Window {
					return false
				}
				// Invariant 2: clamped.
				if w < cmin || w > cmax {
					return false
				}
				// Invariant 3: within TTL of an observation.
				seen, ok := lastSeen[e.Prefix]
				if !ok || now-seen > ttl {
					return false
				}
				// Invariant 4: Lookup agrees.
				lw, ok := a.Lookup(e.Prefix.Addr())
				if !ok || lw != e.Window {
					return false
				}
			}
		}
		// Final teardown: Close leaves no routes behind.
		if err := a.Close(); err != nil {
			return false
		}
		return len(routes.set) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
