package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"riptide/internal/metrics"
)

// ErrFallbackCleared marks a SetInitCwnd failure where the retry decorator
// exhausted the destination's failure budget and withdrew the route instead,
// restoring the kernel-default initial window — the paper's conservative
// fallback when Riptide cannot maintain an override. The agent reacts by
// dropping its entry for the destination.
var ErrFallbackCleared = errors.New("riptide/core: route withdrawn after exhausting failure budget")

// Retry defaults, tuned for iproute2 execs that fail transiently during
// route churn: three quick attempts spread over ~150ms, never more than a
// second apart.
const (
	DefaultRetryAttempts      = 3
	DefaultRetryBaseDelay     = 50 * time.Millisecond
	DefaultRetryMaxDelay      = 1 * time.Second
	DefaultRetryFailureBudget = 3
)

// RetryPolicy configures a RetryingRouteProgrammer.
type RetryPolicy struct {
	// MaxAttempts is the total tries per route operation (first attempt
	// included). 0 means DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry. 0 means DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// FailureBudget is the number of consecutive exhausted SetInitCwnd
	// calls for one destination before the decorator falls back to
	// clearing the route. 0 means DefaultRetryFailureBudget; a negative
	// value disables the fallback.
	FailureBudget int
	// Context, when non-nil, bounds every route operation: cancellation
	// aborts an in-flight backoff wait immediately, suppresses any
	// remaining attempts, and surfaces as the context's error. A context
	// error never counts against the failure budget — shutdown is not a
	// substrate failure, so no route is withdrawn for it.
	Context context.Context
	// Sleep is the delay hook, for tests. Nil means time.Sleep. When
	// Context is set, backoff waits instead select on a timer and
	// Context.Done(), and Sleep is not used.
	Sleep func(time.Duration)
	// Metrics receives riptide_route_attempts / _retries /
	// _retry_exhausted / _fallbacks counters. Nil means metrics are not
	// recorded.
	Metrics *metrics.Registry
}

// RetryStats counts decorator activity.
type RetryStats struct {
	// Attempts is every call into the wrapped programmer.
	Attempts uint64 `json:"attempts"`
	// Retries is attempts beyond the first for an operation.
	Retries uint64 `json:"retries"`
	// Exhausted counts operations that failed every attempt.
	Exhausted uint64 `json:"exhausted"`
	// Fallbacks counts destinations cleared after exhausting the budget.
	Fallbacks uint64 `json:"fallbacks"`
	// FallbackErrors counts fallback clears that themselves failed.
	FallbackErrors uint64 `json:"fallbackErrors"`
	// Batches counts ProgramRoutes calls.
	Batches uint64 `json:"batches"`
	// BatchFallbacks counts batch members re-driven individually after
	// the batch reported them failed (or the inner programmer had no
	// batch path).
	BatchFallbacks uint64 `json:"batchFallbacks"`
}

// RetryingRouteProgrammer decorates a RouteProgrammer with bounded
// exponential backoff and a per-destination failure budget. When a
// destination keeps failing after retries, the decorator clears its route —
// reverting to the kernel default is always safe, while leaving a stale
// aggressive window installed is not — and reports ErrFallbackCleared so the
// agent can drop the entry.
//
// It is safe for concurrent use and implements RouteProgrammer, so it nests
// between the agent and any backend (linux ip(8), the simulated kernel, or
// another decorator).
type RetryingRouteProgrammer struct {
	inner  RouteProgrammer
	policy RetryPolicy

	mu       sync.Mutex
	failures map[netip.Prefix]int
	stats    RetryStats
}

// NewRetryingRouteProgrammer wraps inner with the given policy.
func NewRetryingRouteProgrammer(inner RouteProgrammer, policy RetryPolicy) (*RetryingRouteProgrammer, error) {
	if inner == nil {
		return nil, errors.New("riptide/core: nil inner RouteProgrammer")
	}
	if policy.MaxAttempts == 0 {
		policy.MaxAttempts = DefaultRetryAttempts
	}
	if policy.MaxAttempts < 1 {
		return nil, fmt.Errorf("riptide/core: MaxAttempts %d must be >= 1", policy.MaxAttempts)
	}
	if policy.BaseDelay == 0 {
		policy.BaseDelay = DefaultRetryBaseDelay
	}
	if policy.BaseDelay < 0 {
		return nil, fmt.Errorf("riptide/core: BaseDelay %v must be positive", policy.BaseDelay)
	}
	if policy.MaxDelay == 0 {
		policy.MaxDelay = DefaultRetryMaxDelay
	}
	if policy.MaxDelay < policy.BaseDelay {
		return nil, fmt.Errorf("riptide/core: MaxDelay %v below BaseDelay %v", policy.MaxDelay, policy.BaseDelay)
	}
	if policy.FailureBudget == 0 {
		policy.FailureBudget = DefaultRetryFailureBudget
	}
	if policy.Sleep == nil {
		policy.Sleep = time.Sleep
	}
	return &RetryingRouteProgrammer{
		inner:    inner,
		policy:   policy,
		failures: make(map[netip.Prefix]int),
	}, nil
}

var (
	_ RouteProgrammer      = (*RetryingRouteProgrammer)(nil)
	_ BatchRouteProgrammer = (*RetryingRouteProgrammer)(nil)
)

// Stats returns a copy of the decorator's counters.
func (r *RetryingRouteProgrammer) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// backoff returns the delay before the given retry (1-based).
func (r *RetryingRouteProgrammer) backoff(retry int) time.Duration {
	d := r.policy.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= r.policy.MaxDelay || d < 0 {
			return r.policy.MaxDelay
		}
	}
	if d > r.policy.MaxDelay {
		return r.policy.MaxDelay
	}
	return d
}

// wait blocks for the backoff delay; with a policy context it selects on
// a timer so cancellation interrupts the wait without leaking a goroutine.
func (r *RetryingRouteProgrammer) wait(d time.Duration) error {
	ctx := r.policy.Context
	if ctx == nil {
		r.policy.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs op with retries; it returns the last error when every attempt
// failed, or a context error when the policy context is cancelled first.
// firstDespiteCancel lets the initial attempt run even under a cancelled
// context — route withdrawal relies on it during shutdown — while retries
// and backoff waits are always abandoned on cancellation.
func (r *RetryingRouteProgrammer) do(op func() error, firstDespiteCancel bool) error {
	ctx := r.policy.Context
	var err error
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if ctx != nil && ctx.Err() != nil && !(attempt == 1 && firstDespiteCancel) {
			if err != nil {
				return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
			}
			return ctx.Err()
		}
		if attempt > 1 {
			r.count(func(s *RetryStats) { s.Retries++ }, "riptide_route_retries")
			if werr := r.wait(r.backoff(attempt - 1)); werr != nil {
				return fmt.Errorf("%w (last attempt: %v)", werr, err)
			}
		}
		r.count(func(s *RetryStats) { s.Attempts++ }, "riptide_route_attempts")
		if err = op(); err == nil {
			return nil
		}
	}
	r.count(func(s *RetryStats) { s.Exhausted++ }, "riptide_route_retry_exhausted")
	return err
}

// count applies a stats mutation and mirrors it into the metrics registry.
func (r *RetryingRouteProgrammer) count(f func(*RetryStats), metric string) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
	if r.policy.Metrics != nil {
		r.policy.Metrics.Counter(metric).Inc()
	}
}

// SetInitCwnd implements RouteProgrammer with retries and the fallback
// budget.
func (r *RetryingRouteProgrammer) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	err := r.do(func() error { return r.inner.SetInitCwnd(prefix, cwnd) }, false)
	if err == nil {
		r.mu.Lock()
		delete(r.failures, prefix)
		r.mu.Unlock()
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The operation was abandoned, not refused: shutdown must neither
		// charge the destination's failure budget nor withdraw its route.
		return err
	}

	r.mu.Lock()
	r.failures[prefix]++
	consecutive := r.failures[prefix]
	budget := r.policy.FailureBudget
	exhausted := budget > 0 && consecutive >= budget
	if exhausted {
		delete(r.failures, prefix)
	}
	r.mu.Unlock()
	if !exhausted {
		return err
	}

	// Budget exhausted: withdraw the route so the destination reverts to
	// the kernel default rather than keeping whatever half-state the
	// failing substrate left behind.
	if clrErr := r.inner.ClearInitCwnd(prefix); clrErr != nil {
		r.count(func(s *RetryStats) { s.FallbackErrors++ }, "riptide_route_fallback_errors")
		return fmt.Errorf("set initcwnd %v after %d consecutive failures: %v (fallback clear failed: %w)",
			prefix, consecutive, err, clrErr)
	}
	r.count(func(s *RetryStats) { s.Fallbacks++ }, "riptide_route_fallbacks")
	return fmt.Errorf("%w (dst %v, %d consecutive failures, last: %v)",
		ErrFallbackCleared, prefix, consecutive, err)
}

// ProgramRoutes implements BatchRouteProgrammer. When the wrapped programmer
// has a batch path, the whole set goes through it first — one `ip -batch`
// exec or one kernel lock acquisition for the common all-success round —
// and only the members it reports failed (which, for a backend that cannot
// attribute batch failures, may be all of them) are re-driven individually
// through the full retry/budget/fallback machinery. Without an inner batch
// path every member takes the individual path directly. The result follows
// the BatchRouteProgrammer contract: nil when everything (eventually)
// succeeded, else one error slot per op.
func (r *RetryingRouteProgrammer) ProgramRoutes(ops []RouteOp) []error {
	if len(ops) == 0 {
		return nil
	}
	r.count(func(s *RetryStats) { s.Batches++ }, "riptide_route_batches")
	bp, hasBatch := r.inner.(BatchRouteProgrammer)
	var batchErrs []error
	if hasBatch {
		r.count(func(s *RetryStats) { s.Attempts++ }, "riptide_route_attempts")
		batchErrs = bp.ProgramRoutes(ops)
	}
	var errs []error
	for i, op := range ops {
		if hasBatch && (batchErrs == nil || batchErrs[i] == nil) {
			// The batch installed this member; clear its failure budget
			// like an individual success would.
			r.mu.Lock()
			delete(r.failures, op.Prefix)
			r.mu.Unlock()
			continue
		}
		if hasBatch {
			r.count(func(s *RetryStats) { s.BatchFallbacks++ }, "riptide_route_batch_fallbacks")
		}
		var err error
		if op.Clear {
			err = r.ClearInitCwnd(op.Prefix)
		} else {
			err = r.SetInitCwnd(op.Prefix, op.Window)
		}
		if err != nil {
			if errs == nil {
				errs = make([]error, len(ops))
			}
			errs[i] = err
		}
	}
	return errs
}

// ClearInitCwnd implements RouteProgrammer with retries (no fallback — the
// clear is already the conservative action; a failure is reported so the
// agent keeps the entry and retries next round). Cancelling the policy
// context does not abandon a clear outright: shutdown withdraws every
// installed route through this path, so the first attempt always runs;
// only the retries after it are dropped.
func (r *RetryingRouteProgrammer) ClearInitCwnd(prefix netip.Prefix) error {
	err := r.do(func() error { return r.inner.ClearInitCwnd(prefix) }, true)
	if err == nil {
		r.mu.Lock()
		delete(r.failures, prefix)
		r.mu.Unlock()
	}
	return err
}
