package core

import (
	"math"
	"net/netip"
	"runtime"
	"sync"
	"time"
)

// This file holds the lock-striped shard machinery behind the agent's hot
// path. Per-destination state — the committed route entry, the smoothing
// state, and the per-tick grouping scratch — lives in ONE map slot per
// destination (destState), split across Config.Shards shards keyed by prefix
// hash. Tick fans its ingest and plan stages out over one worker per shard
// and merges the per-shard plans deterministically before the (short,
// global) commit stage. Collapsing entry + history + group bookkeeping into
// a single struct means the steady-state plan stage performs exactly one
// prefix-keyed map operation per observation; everything else is pointer
// chasing. See the pipeline overview in tick.go.

// maxShards bounds Config.Shards; beyond this the per-agent bucket matrix
// (shards² slice headers) costs more than the striping saves.
const maxShards = 256

// parallelThreshold is the observation count below which a tick stays on
// the serial path: spawning one goroutine per shard costs more than
// scanning a small sample set inline.
const parallelThreshold = 256

// MaxDefaultShards caps the Config.Shards default: plan-stage work per shard
// is tiny, so striping wider than this buys nothing while growing the bucket
// matrix quadratically. Benchmarks that derive a shard count from GOMAXPROCS
// clamp to it so their labels match the agent's effective configuration.
const MaxDefaultShards = 16

// maxDuration is the nextExpiry sentinel for "no live entry has a deadline".
const maxDuration = time.Duration(math.MaxInt64)

// defaultShards is the Config.Shards default: one shard per core, capped at
// MaxDefaultShards.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > MaxDefaultShards {
		n = MaxDefaultShards
	}
	return n
}

// destState is everything the agent knows about one destination, in one map
// slot: the committed route entry (valid while installed is true), the
// inline EWMA smoothing state (used unless a caller supplied a History
// policy), and the plan stage's per-tick grouping scratch. Smoothing state
// outlives the installed route on purpose — a destination whose program
// keeps failing still accumulates history, exactly as the previous separate
// history map did.
type destState struct {
	entry
	// installed marks that a route is programmed and the embedded entry
	// fields are live; Lookup/Entries/snapshots ignore the state otherwise.
	installed bool
	// absorbed marks a child whose specific route was withdrawn in favour
	// of an installed covering aggregate; the entry fields keep learning so
	// a diverging window can split its specific route back out.
	absorbed bool

	// Inline smoothing state for the default per-shard EWMA path.
	ewma    float64
	hasEwma bool

	// Plan-stage scratch (tickMu only): the tick sequence this state was
	// last touched in, and its group's span in the shard arena.
	seq  uint64
	span groupSpan

	// Delta-tick bookkeeping (tickMu only): the group size of the last
	// planned round and the Combine value it produced. A group whose every
	// observation is position-stable since last round and whose size
	// matches prevN is provably identical to last round's, so its Combine
	// call (and arena copy) is skipped and lastValue reused.
	prevN     int32
	lastValue float64
	hasLast   bool

	// Quiescent fast-path bookkeeping (tickMu only; see planShardQuiescent).
	// memberOff locates the group's member sample-indices in sh.memberIdx
	// (valid while sh.planValid); dirtySeq dedups the group in a stable
	// round's dirty list; inActive tracks membership in sh.active; cleanSeen
	// is the sh.cleanRounds value up to which lazy TTL/sample credit has
	// been folded into the entry fields; ewmaSeen is the same watermark for
	// the smoothing state (advanced only by eager processing, replayed by
	// forwardEWMALocked); wakeAt is the sh.cleanRounds value at which the
	// state's next window flip is due (freezeHorizon's verdict) — until
	// then the clean loop skips it entirely, and 0 means the horizon is
	// unknown and must be recomputed on the next visit.
	memberOff int32
	dirtySeq  uint64
	cleanSeen uint64
	ewmaSeen  uint64
	wakeAt    uint64
	inActive  bool

	// Incremental-digest cache (shard mu): the FNV-1a state after hashing
	// the destination's canonical CIDR text (computed once per slot — slab
	// slots are never recarved for a different prefix, so the seed stays
	// valid for the struct's lifetime) and the content hash currently
	// folded into the agent's digest accumulator (meaningful while
	// installed; see internal/core/digest.go).
	digSeed   uint64
	digHash   uint64
	digSeeded bool
}

// shard is one lock stripe of the agent's per-destination state, plus the
// scratch its plan worker reuses across ticks. mu guards states against
// concurrent readers (Lookup, Entries, ExportSnapshot) and cross-tick
// mutators; the scratch slices are touched only by the shard's worker under
// tickMu.
type shard struct {
	// idx is the shard's position in Agent.shards, stamped into plan ops so
	// the commit stage skips re-hashing the destination.
	idx    int32
	mu     sync.Mutex
	states map[netip.Prefix]*destState
	// installed counts states with a live route, maintained at every
	// commit/withdraw site — a sizing hint for Entries and snapshots.
	installed int
	// history is non-nil only when the caller supplied a shared History
	// policy; the default EWMA smoothing is inlined in destState.
	history HistoryPolicy

	// gen invalidates cached *destState pointers in the agent's sample
	// cache: bumped on every state deletion (and Close). Read during
	// ingest without the shard lock — safe because every writer holds
	// tickMu, which ingest also runs under.
	gen uint64
	// nextExpiry is a lazy lower bound on the earliest TTL deadline among
	// installed/absorbed states; expiry scans are skipped while now is
	// before it, making a no-op expiry round O(shards) instead of
	// O(entries). maxDuration when no live state has a deadline.
	nextExpiry time.Duration
	// planValid marks that touched/span/arena scratch from the last
	// grouping rebuild is still exact: no state has been deleted since.
	// Combined with an identical sample stream it lets planShard skip the
	// grouping passes outright (see planShard).
	planValid bool

	// Aggregation state (Config.AggregateBits): covering prefix →
	// membership; dirtyAggs queues parents whose membership or windows
	// changed for the next aggregate pass. Guarded by mu like states.
	aggs      map[netip.Prefix]*aggState
	dirtyAggs []netip.Prefix

	// slab backs destState allocation in insertion-order blocks, so the
	// plan stage's pointer chasing walks mostly-sequential memory. Blocks
	// are never reallocated, keeping state pointers stable; slots of
	// deleted states are reclaimed only when their whole block is.
	slab    []destState
	slabOff int

	// Plan-stage scratch, reused across ticks (tickMu only).
	touched     []plannedDest
	arena       []Observation
	plan        []programOp
	guardClears []netip.Prefix
	expired     []netip.Prefix
	absorbs     []netip.Prefix
	dissolves   []netip.Prefix
	delta       tickDelta

	// Quiescent fast-path state (a.quiescentOK configs only). memberIdx
	// concatenates every touched group's member sample-indices in sample
	// order, laid out by the last full rebuild (valid while planValid);
	// active lists the touched states that still need per-round plan work —
	// smoothing not yet at its fixed point, or install pending — and drains
	// as states converge. cleanRounds counts stable rounds applied
	// shard-wide since the agent started; refreshedAt is the time of the
	// latest one; fullSeq is the tick sequence of the last full rebuild (a
	// state with seq == fullSeq is covered by shard-level lazy credit).
	// dirtyList and gather are per-round scratch. All tickMu-only except
	// where materializeLocked runs under mu from readers.
	memberIdx   []int32
	active      []plannedDest
	dirtyList   []plannedDest
	gather      []Observation
	cleanRounds uint64
	refreshedAt time.Duration
	fullSeq     uint64
	// creditPending marks that quiescent rounds ran since the last full
	// rebuild, so the next full round bulk-materializes the covered set.
	creditPending bool
}

// newDestState carves a destState from the shard's slab.
func (sh *shard) newDestState() *destState {
	if sh.slabOff == len(sh.slab) {
		n := 2 * len(sh.slab)
		if n == 0 {
			n = 64
		}
		if n > 4096 {
			n = 4096
		}
		sh.slab = make([]destState, n)
		sh.slabOff = 0
	}
	st := &sh.slab[sh.slabOff]
	sh.slabOff++
	// A brand-new state has earned no lazy clean-round credit, and its
	// window trajectory is unknown.
	st.cleanSeen = sh.cleanRounds
	st.ewmaSeen = sh.cleanRounds
	st.wakeAt = 0
	return st
}

// noteExpiry lowers the shard's next-expiry bound to cover a refreshed or
// newly installed deadline. Called at every expires-write site.
func (sh *shard) noteExpiry(e time.Duration) {
	if e < sh.nextExpiry {
		sh.nextExpiry = e
	}
}

// cachedSample is the delta-tick sample cache entry for one observation
// index: the route key and shard resolved last round, the resolved state
// pointer, and the shard generation that validates it. invalid marks an
// observation the validation pass rejected, so its twin next round is
// rejected without re-keying.
type cachedSample struct {
	key     netip.Prefix
	st      *destState
	gen     uint64
	shard   int32
	invalid bool
}

// plannedDest is one destination observed this tick, in first-encounter
// (original sample) order.
type plannedDest struct {
	key netip.Prefix
	st  *destState
}

// groupSpan locates one destination's observations inside the shard's arena.
// off == cleanSpan marks a group proven identical to last round's: it is
// never laid out in the arena and its Combine value is reused.
type groupSpan struct {
	off, n, fill int32
	// mfill counts member indices recorded into sh.memberIdx during the
	// rebuild's fill pass (quiescent-eligible configs only).
	mfill int32
	// dirty is set when any member observation was not position-stable
	// since last round; only a fully stable group of unchanged size may
	// skip the arena.
	dirty bool
}

// cleanSpan is the groupSpan.off sentinel for skipped (clean) groups.
const cleanSpan = int32(-1)

// keyedObs is one valid observation routed to a shard: the destination's
// route key plus the observation's index in the tick's sample slice. The
// plan stage resolves st once per observation (the hot path's only map
// lookup) and reuses the pointer for the arena fill pass.
type keyedObs struct {
	key netip.Prefix
	st  *destState
	idx int32
}

// tickDelta accumulates one shard's stat deltas during the plan stage; the
// commit stage folds them into Stats under a.mu.
type tickDelta struct {
	combinerRejects  uint64
	advisorRejects   uint64
	guardCapped      uint64
	guardVetoed      uint64
	guardQuarantined uint64
	// expiredDropped counts absorbed (route-less) states dropped by the
	// expiry sweep; they fold into EntriesExpired without a clear op.
	expiredDropped uint64
}

func (d *tickDelta) add(o tickDelta) {
	d.combinerRejects += o.combinerRejects
	d.advisorRejects += o.advisorRejects
	d.guardCapped += o.guardCapped
	d.guardVetoed += o.guardVetoed
	d.guardQuarantined += o.guardQuarantined
	d.expiredDropped += o.expiredDropped
}

// shardIndex maps a route key to its stripe: FNV-1a over the canonical
// 16-byte address plus the mask length. With aggregation enabled the hash
// runs over the covering aggregate key instead, so a parent and all its
// children land on one shard and the aggregate pass never crosses stripes
// (at the cost of coarser load spreading).
func (a *Agent) shardIndex(p netip.Prefix) int {
	if len(a.shards) == 1 {
		return 0
	}
	if parent, ok := a.aggKey(p); ok {
		p = parent
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	b := p.Addr().As16()
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= uint64(uint8(p.Bits()))
	h *= prime64
	return int(h % uint64(len(a.shards)))
}

func (a *Agent) shardFor(p netip.Prefix) *shard {
	return a.shards[a.shardIndex(p)]
}

// smooth folds value into the destination's smoothing state: the inline
// EWMA (bit-identical to EWMAHistory.Update) unless a caller-supplied
// policy is installed.
func (a *Agent) smooth(sh *shard, st *destState, key netip.Prefix, value float64) float64 {
	if sh.history != nil {
		return sh.history.Update(key, value)
	}
	if !st.hasEwma {
		st.ewma = value
		st.hasEwma = true
		return value
	}
	st.ewma = a.cfg.Alpha*st.ewma + (1-a.cfg.Alpha)*value
	return st.ewma
}

// forgetHistory drops a destination's smoothing state in a caller-supplied
// policy; the inline EWMA state dies with its destState map slot, which
// every caller deletes alongside this call.
func (a *Agent) forgetHistory(sh *shard, key netip.Prefix) {
	if sh.history != nil {
		sh.history.Forget(key)
	}
}

// dropInstalled removes dst's state (and any external history) after its
// route was withdrawn, under the shard lock. It reports whether a live
// entry existed. A successful drop bumps the table version: the entry
// vanishes from exports, so peers comparing digests see the change even
// though no entry carries the new version (fleet sharing has no tombstones —
// receivers age the entry out via its TTL).
func (sh *shard) dropInstalled(a *Agent, dst netip.Prefix) bool {
	st, ok := sh.states[dst]
	if !ok || !st.installed {
		return false
	}
	sh.installed--
	a.digestUnfold(st)
	a.dropState(sh, dst)
	a.bumpVersion()
	return true
}

// dropState deletes a destination's state under the shard lock, bumping the
// shard generation so cached sample pointers and retained grouping scratch
// are invalidated, and updating aggregate membership. Callers maintain
// sh.installed themselves. The struct's live flags are cleared so stale
// pointers in retained scratch (touched, active) read it as dead until the
// next full rebuild discards them.
func (a *Agent) dropState(sh *shard, dst netip.Prefix) {
	if st, ok := sh.states[dst]; ok {
		st.installed = false
		st.absorbed = false
		st.inActive = false
	}
	delete(sh.states, dst)
	sh.gen++
	sh.planValid = false
	a.forgetHistory(sh, dst)
	a.aggUnregister(sh, dst)
}

// lockedHistory serializes a caller-supplied HistoryPolicy that is shared
// across shards. Updates are keyed per prefix, so serializing them in
// whatever order the plan workers arrive cannot change any smoothed value.
type lockedHistory struct {
	mu    sync.Mutex
	inner HistoryPolicy
}

func (l *lockedHistory) Name() string { return l.inner.Name() }

func (l *lockedHistory) Update(dst netip.Prefix, value float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Update(dst, value)
}

func (l *lockedHistory) Forget(dst netip.Prefix) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Forget(dst)
}

// runParallel runs fn(0..n-1), inline when n == 1.
func runParallel(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// ingestChunk validates and routes worker w's contiguous chunk of the
// sample slice: invalid observations are dropped, the rest get their route
// key, are shown to the governor, and land in the worker's per-shard
// buckets. Chunks are contiguous and buckets worker-major, so replaying
// buckets in worker order during the plan stage reconstructs the original
// sample order exactly — the shard count can never change what a Combiner
// sees.
//
// In delta mode an observation byte-identical at the same index as last
// round reuses its cached key/shard/state (the cached state pointer survives
// only while the shard generation is unchanged); everything else takes the
// full validation path and re-primes the cache. The governor sees every
// valid observation either way.
func (a *Agent) ingestChunk(w int, obs []Observation) {
	nShards := len(a.shards)
	chunk := (len(obs) + a.ingestWorkers - 1) / a.ingestWorkers
	lo := w * chunk
	hi := lo + chunk
	if hi > len(obs) {
		hi = len(obs)
	}
	prev, prevCache, cache := a.obsPrev, a.cachePrev, a.cacheCur
	stable := a.delta && a.havePrev
	for i := lo; i < hi; i++ {
		o := &obs[i]
		if stable && i < len(prev) && *o == prev[i] {
			c := prevCache[i]
			switch {
			case c.invalid:
				cache[i] = c
				continue
			case c.st != nil && c.gen == a.shards[c.shard].gen:
				cache[i] = c
				if a.cfg.Guard != nil {
					a.cfg.Guard.ObserveSample(c.key, *o)
				}
				b := &a.buckets[w*nShards+int(c.shard)]
				*b = append(*b, keyedObs{key: c.key, st: c.st, idx: int32(i)})
				continue
			}
		}
		if o.Cwnd <= 0 || !o.Dst.IsValid() {
			if a.delta {
				cache[i] = cachedSample{invalid: true}
			}
			continue
		}
		key, err := a.destKey(o.Dst)
		if err != nil {
			if a.delta {
				cache[i] = cachedSample{invalid: true}
			}
			continue
		}
		if a.cfg.Guard != nil {
			a.cfg.Guard.ObserveSample(key, *o)
		}
		s := a.shardIndex(key)
		if a.delta {
			// The state pointer and generation are filled in by the plan
			// stage once the shard resolves (or creates) the state.
			cache[i] = cachedSample{key: key, shard: int32(s)}
		}
		a.buckets[w*nShards+s] = append(a.buckets[w*nShards+s], keyedObs{key: key, idx: int32(i)})
	}
}

// planShard runs the plan stage for one shard, under the shard lock: resolve
// each routed observation to its destState (one map operation per dirty
// observation — cached pointers cover the rest), lay the dirty groups out
// contiguously in the arena preserving sample order, then combine, smooth,
// clamp, let the governor review, refresh live entries, run the aggregate
// pass, and emit the shard's route plan, clears, and expiry candidates into
// its scratch slices.
//
// Delta mode prunes the work three ways, always producing byte-identical
// output to a full rescan (enforced by TestDeltaTickMatchesFullRescan):
//
//   - an observation position-stable since last round arrives with its
//     cached state pointer, skipping the map lookup (ingestChunk);
//   - a group whose every member is stable and whose size is unchanged is
//     provably identical to last round's, so the arena copy and Combine are
//     skipped and the recorded Combine value reused — smoothing, clamping,
//     review, and TTL refresh still run every round;
//   - a sample stream that is literally the same slice as last round's,
//     with no state deleted since the last rebuild (sh.planValid), skips
//     passes 1 and 2 outright: the retained touched/span/arena scratch is
//     still exact.
func (a *Agent) planShard(si int, obs []Observation, now time.Duration) {
	sh := a.shards[si]
	nShards := len(a.shards)
	sh.plan = sh.plan[:0]
	sh.guardClears = sh.guardClears[:0]
	sh.expired = sh.expired[:0]
	sh.absorbs = sh.absorbs[:0]
	sh.dissolves = sh.dissolves[:0]

	sh.mu.Lock()
	defer sh.mu.Unlock()

	// A full round ending a quiescent run must fold the outstanding
	// clean-round credit — entry fields and skipped smoothing advances —
	// into the covered entries (last rebuild's touched set) before pass 3
	// starts mutating them eagerly, and before pass 1 restamps their
	// sequence numbers.
	if sh.creditPending {
		for _, td := range sh.touched {
			a.materializeLocked(sh, td.st)
			a.forwardEWMALocked(sh, td.st)
		}
		sh.creditPending = false
	}

	if !(a.identTick && sh.planValid) {
		sh.planValid = false
		sh.touched = sh.touched[:0]

		// Pass 1: resolve states and count groups. Replaying the
		// worker-major buckets in worker order visits observations in
		// original sample order, so first-encounter order (sh.touched) is
		// deterministic for every shard and worker count. Observations
		// that arrived without a cached state resolve through the map and
		// mark their group dirty; newly resolved pointers are written back
		// to the sample cache for the next round.
		seq := a.tickSeq
		cache := a.cacheCur
		gen := sh.gen
		for w := 0; w < a.ingestWorkers; w++ {
			bucket := a.buckets[w*nShards+si]
			for j := range bucket {
				ko := &bucket[j]
				st := ko.st
				fresh := st == nil
				if fresh {
					st = sh.states[ko.key]
					if st == nil {
						st = sh.newDestState()
						sh.states[ko.key] = st
						a.aggRegister(sh, ko.key, st)
					}
					if a.delta {
						cache[ko.idx].st = st
						cache[ko.idx].gen = gen
					}
					ko.st = st
				}
				if st.seq != seq {
					st.seq = seq
					st.span = groupSpan{}
					sh.touched = append(sh.touched, plannedDest{key: ko.key, st: st})
				}
				st.span.n++
				if fresh {
					st.span.dirty = true
				}
			}
		}

		// Pass 2: clean groups (fully stable, unchanged size, with a
		// recorded Combine value) skip the arena; dirty groups get offsets
		// and are filled in sample order. Quiescent-eligible configs also
		// record every group's member sample-indices (memberIdx), so later
		// stable rounds can re-Combine a dirtied group without any regroup.
		off := int32(0)
		moff := int32(0)
		for _, td := range sh.touched {
			sp := &td.st.span
			if a.quiescentOK {
				td.st.memberOff = moff
				moff += sp.n
			}
			if !sp.dirty && td.st.hasLast && sp.n == td.st.prevN {
				sp.off = cleanSpan
				continue
			}
			sp.off = off
			off += sp.n
		}
		if int(off) > len(sh.arena) {
			sh.arena = make([]Observation, off)
		}
		if int(moff) > len(sh.memberIdx) {
			sh.memberIdx = make([]int32, moff)
		}
		if off > 0 || moff > 0 {
			arena, members := sh.arena, sh.memberIdx
			for w := 0; w < a.ingestWorkers; w++ {
				for _, ko := range a.buckets[w*nShards+si] {
					sp := &ko.st.span
					if moff > 0 {
						members[ko.st.memberOff+sp.mfill] = ko.idx
						sp.mfill++
					}
					if sp.off == cleanSpan {
						continue
					}
					arena[sp.off+sp.fill] = obs[ko.idx]
					sp.fill++
				}
			}
		}
		if a.delta {
			sh.planValid = true
		}
		if a.quiescentOK {
			sh.fullSeq = seq
		}
	}

	// Pass 3: per destination — combine (or reuse), smooth, clamp, review,
	// refresh. This runs in full every round: smoothing must advance even
	// on unchanged observations, and TTLs must refresh.
	arena := sh.arena
	for _, td := range sh.touched {
		st := td.st
		sp := &st.span
		var value float64
		if sp.off == cleanSpan {
			value = st.lastValue
		} else {
			value = a.cfg.Combiner.Combine(arena[sp.off : sp.off+sp.n])
			st.prevN = sp.n
			if !isFinite(value) {
				// A custom Combiner produced NaN/±Inf: skip the round for
				// this destination rather than folding garbage into history
				// (an EWMA never recovers from a NaN).
				st.hasLast = false
				sh.delta.combinerRejects++
				continue
			}
			st.lastValue = value
			st.hasLast = true
		}
		smoothed := a.smooth(sh, st, td.key, value)
		if a.cfg.Advisor != nil {
			if m := a.cfg.Advisor.Advise(td.key); isFinite(m) {
				smoothed *= m
			} else {
				sh.delta.advisorRejects++
			}
		}
		final := a.clamp(smoothed)

		if a.cfg.Guard != nil {
			capped, action := a.cfg.Guard.Review(td.key, final)
			switch action {
			case GuardVeto, GuardQuarantine:
				sh.delta.guardVetoed++
				if action == GuardQuarantine {
					sh.delta.guardQuarantined++
				}
				// An installed route for a held-back destination is
				// withdrawn (outside the locks, in the program stage).
				// The entry is only dropped once the clear succeeds, so
				// a failed withdrawal retries next round.
				if st.installed {
					sh.guardClears = append(sh.guardClears, td.key)
				} else if st.absorbed {
					// A veto cannot carve a hole in the covering route
					// that serves this child: drop the child's state and
					// force the aggregate apart so the hold-back takes
					// effect next round.
					a.dropState(sh, td.key)
					if parent, ok := a.aggKey(td.key); ok {
						if agg := sh.aggs[parent]; agg != nil {
							agg.force = true
							a.aggMarkDirty(sh, parent, agg)
						}
					}
				}
				continue
			case GuardCap:
				if capped < final {
					if capped < a.cfg.CMin {
						capped = a.cfg.CMin
					}
					if capped < final {
						final = capped
						sh.delta.guardCapped++
					}
				}
			}
		}

		n := int(sp.n)
		switch {
		case st.installed:
			// The route is installed; fresh observations extend its
			// life even if programming the new value fails later.
			st.expires = now + a.cfg.TTL
			st.updated = now
			st.lastObs = n
			st.samples += uint64(n)
			// A local observation confirms (and from now on owns) an
			// entry that was seeded from a fleet snapshot.
			st.merged = false
			st.mergedAge = 0
			sh.noteExpiry(st.expires)
			if st.window != final {
				sh.plan = append(sh.plan, programOp{dst: td.key, window: final, obs: n, st: st, shard: sh.idx})
			}
		case st.absorbed:
			// Covered by an aggregate: keep learning in place, refresh the
			// child's TTL and the covering route's, and split the specific
			// route back out only when the learned window diverges from
			// the aggregate (it shadows the broader route via LPM).
			st.window = final
			st.expires = now + a.cfg.TTL
			st.updated = now
			st.lastObs = n
			st.samples += uint64(n)
			st.merged = false
			st.mergedAge = 0
			sh.noteExpiry(st.expires)
			parent, _ := a.aggKey(td.key)
			agg := sh.aggs[parent]
			if agg == nil || !agg.installed || absInt(final-agg.window) > a.cfg.AggregateTolerance {
				sh.plan = append(sh.plan, programOp{dst: td.key, window: final, obs: n, split: true, st: st, shard: sh.idx})
			} else if pst := sh.states[parent]; pst != nil && pst.installed {
				pst.expires = now + a.cfg.TTL
				pst.updated = now
				sh.noteExpiry(pst.expires)
			}
		default:
			// New destination: the entry is recorded in the program
			// stage, only once the route is actually installed.
			sh.plan = append(sh.plan, programOp{dst: td.key, window: final, obs: n, st: st, shard: sh.idx})
		}
	}

	// Rebuild the quiescent active list: after a full round every touched
	// state starts active and drops off as it converges (planShardQuiescent).
	if a.quiescentOK {
		sh.active = append(sh.active[:0], sh.touched...)
		for _, td := range sh.touched {
			td.st.inActive = true
			td.st.cleanSeen = sh.cleanRounds
			td.st.ewmaSeen = sh.cleanRounds
			td.st.wakeAt = 0
		}
	}

	a.aggregatePass(sh, now)

	if sh.nextExpiry <= now {
		sh.delta.expiredDropped += a.sweepExpiredLocked(sh, now)
	}
}

// sweepExpiredLocked scans the shard for lapsed deadlines under its lock:
// installed states queue a route withdrawal in sh.expired; absorbed states
// have no route to withdraw and are dropped directly (the returned count
// folds into EntriesExpired). The shard's next-expiry bound is recomputed;
// queued withdrawals pin it at now so a failed clear retries next round.
func (a *Agent) sweepExpiredLocked(sh *shard, now time.Duration) (dropped uint64) {
	next := maxDuration
	for dst, st := range sh.states {
		// Outstanding quiescent rounds leave covered entries' deadlines
		// stale; fold the credit in before judging them.
		a.materializeLocked(sh, st)
		switch {
		case st.installed && st.expires <= now:
			sh.expired = append(sh.expired, dst)
		case st.absorbed && st.expires <= now:
			a.dropState(sh, dst)
			dropped++
		case (st.installed || st.absorbed) && st.expires < next:
			next = st.expires
		}
	}
	if len(sh.expired) > 0 {
		next = now
	}
	sh.nextExpiry = next
	return dropped
}

// The quiescent fast path.
//
// A production sampler usually reports the same connection table round after
// round, with only the congestion metrics moving. When the stream is
// *positionally stable* — same length, same destination (and validity) at
// every index — group membership is provably unchanged, so the whole
// ingest/regroup machinery is redundant: the only real work is re-combining
// the groups that contain a changed observation, and advancing smoothing
// for states whose EWMA has not yet reached its fixed point.
//
// planShardQuiescent exploits that. It is used only for configurations
// where a skipped per-destination visit is provably unobservable
// (a.quiescentOK: no Governor, no Advisor, no shared History policy, no
// prefix aggregation) and produces byte-identical output to a full rescan:
//
//   - dirty groups (any member changed this round) re-Combine from their
//     member sample-indices recorded at the last full rebuild;
//   - clean states still converging (or with an install pending) advance
//     through sh.active, and drop off it once smoothing reaches a bitwise
//     fixed point with the programmed window — after which every further
//     round is a no-op for them by definition;
//   - the per-round TTL refresh and sample credit of converged states is
//     applied lazily: sh.cleanRounds/refreshedAt record the rounds the
//     shard sat quiescent, and materializeLocked folds the credit into the
//     entry fields before anything reads them (Entries, snapshots, expiry
//     sweeps, or the next full rebuild).

// materializeLocked folds outstanding quiescent-round credit into one
// entry: the TTL refreshes and per-round sample counts the skipped visits
// would have applied. Covered states are exactly last full rebuild's
// touched set (seq == fullSeq); anything else — merged entries, dropped
// states lingering in stale scratch — takes no credit. Called under the
// state's shard lock (readers) or tickMu (plan stage).
func (a *Agent) materializeLocked(sh *shard, st *destState) {
	if st.cleanSeen == sh.cleanRounds || st.seq != sh.fullSeq || !st.installed {
		st.cleanSeen = sh.cleanRounds
		return
	}
	st.samples += uint64(st.lastObs) * (sh.cleanRounds - st.cleanSeen)
	st.expires = sh.refreshedAt + a.cfg.TTL
	st.updated = sh.refreshedAt
	st.cleanSeen = sh.cleanRounds
	sh.noteExpiry(st.expires)
}

// compareChunk is the stable-round detector: worker w compares its chunk of
// the sample against last round's, routing changed observations (same
// destination, still valid) to the per-shard dirty buckets. It reports
// false — round not stable, fall back to the full ingest path — on any
// membership change: a destination swap, a validity flip, or an observation
// whose cached state is missing.
func (a *Agent) compareChunk(w int, obs []Observation) bool {
	nShards := len(a.shards)
	chunk := (len(obs) + a.ingestWorkers - 1) / a.ingestWorkers
	lo := w * chunk
	hi := lo + chunk
	if hi > len(obs) {
		hi = len(obs)
	}
	prev, prevCache := a.obsPrev, a.cachePrev
	for i := lo; i < hi; i++ {
		o := &obs[i]
		if *o == prev[i] {
			continue
		}
		c := &prevCache[i]
		if c.invalid || c.st == nil || o.Dst != prev[i].Dst || o.Cwnd <= 0 {
			return false
		}
		b := &a.buckets[w*nShards+int(c.shard)]
		*b = append(*b, keyedObs{key: c.key, st: c.st, idx: int32(i)})
	}
	return true
}

// quiescentBody is pass 3 of the plan stage for one destination on the
// quiescent path — the same combine-result handling as planShard's loop,
// minus the branches the a.quiescentOK gate rules out (guard, advisor,
// aggregation). It reports whether the round was a steady refresh: the
// route installed and its programmed window unchanged.
func (a *Agent) quiescentBody(sh *shard, key netip.Prefix, st *destState, value float64, n int, now time.Duration) (steady bool) {
	smoothed := a.smooth(sh, st, key, value)
	final := a.clamp(smoothed)
	if !st.installed {
		// Install still pending (or the first program failed); replan every
		// round, exactly like the full path's new-destination branch.
		sh.plan = append(sh.plan, programOp{dst: key, window: final, obs: n, st: st, shard: sh.idx})
		return false
	}
	st.expires = now + a.cfg.TTL
	st.updated = now
	st.lastObs = n
	st.samples += uint64(n)
	st.merged = false
	st.mergedAge = 0
	sh.noteExpiry(st.expires)
	if st.window != final {
		sh.plan = append(sh.plan, programOp{dst: key, window: final, obs: n, st: st, shard: sh.idx})
		return false
	}
	return true
}

// maxFreezeSim bounds freezeHorizon's trajectory walk. A float64 EWMA under
// a fixed input is monotone toward that input and therefore reaches a
// bitwise fixed point in finitely many steps — around 130 for realistic
// window magnitudes. The bound only matters for absurd combiner outputs.
const maxFreezeSim = 8192

// freezeHorizon simulates a state's future smoothing trajectory under its
// current combined value, using bit-for-bit the float expression smooth
// evaluates each round, and returns the number of rounds until the clamped
// window next changes: 0 means it never will — the window is frozen and the
// state may drain from the active list, every later visit being a pure
// TTL/sample refresh that the shard-level lazy credit replays. A positive
// horizon parks the state until exactly that round. The walk is short: the
// trajectory approaches the combined value from one side without crossing
// it (round-to-nearest cannot push the convex combination past v), and
// clamp is monotone, so once the current window equals clamp(v) no flip can
// ever come; otherwise a flip is at most a few steps out. A walk that
// somehow exhausts maxFreezeSim without a flip or fixed point answers 1 —
// the state is revisited every round, slower but never wrong.
func (a *Agent) freezeHorizon(st *destState) int32 {
	e, v, w := st.ewma, st.lastValue, st.window
	if w == a.clamp(v) {
		return 0
	}
	for k := int32(1); k <= maxFreezeSim; k++ {
		e2 := a.cfg.Alpha*e + (1-a.cfg.Alpha)*v
		if e2 == e {
			return 0
		}
		if a.clamp(e2) != w {
			return k
		}
		e = e2
	}
	return 1
}

// forwardEWMALocked replays the smoothing advances a drained state skipped:
// each quiescent round the full path would have folded the unchanged
// combined value into the EWMA with the exact expression smooth uses, so
// iterating it here is bitwise identical. The walk stops early at the fixed
// point. Must run before any eager smoothing of a previously drained state
// (dirty rounds and the full rebuild ending a quiescent run).
func (a *Agent) forwardEWMALocked(sh *shard, st *destState) {
	k := sh.cleanRounds - st.ewmaSeen
	st.ewmaSeen = sh.cleanRounds
	if k == 0 || st.seq != sh.fullSeq || !st.installed || !st.hasEwma || !st.hasLast {
		return
	}
	v := st.lastValue
	for ; k > 0; k-- {
		e := a.cfg.Alpha*st.ewma + (1-a.cfg.Alpha)*v
		if e == st.ewma {
			return
		}
		st.ewma = e
	}
}

// planShardQuiescent replaces planShard on a stable round: group membership
// is unchanged since the last full rebuild, so only dirty groups and
// not-yet-converged states are visited. Everything else is covered by the
// shard-level clean-round credit.
func (a *Agent) planShardQuiescent(si int, obs []Observation, now time.Duration) {
	sh := a.shards[si]
	nShards := len(a.shards)
	sh.plan = sh.plan[:0]
	sh.guardClears = sh.guardClears[:0]
	sh.expired = sh.expired[:0]
	sh.absorbs = sh.absorbs[:0]
	sh.dissolves = sh.dissolves[:0]

	sh.mu.Lock()
	defer sh.mu.Unlock()

	seq := a.tickSeq

	// Collect this round's dirty groups from the compare buckets, deduped
	// by group, and settle their outstanding lazy credit before this
	// round's counter bump — the current round is handled eagerly below,
	// so it must not also be credited. Bucket replay order is original
	// sample order, but no order dependence remains here: the commit stage
	// sorts the merged plan.
	sh.dirtyList = sh.dirtyList[:0]
	for w := 0; w < a.ingestWorkers; w++ {
		for _, ko := range a.buckets[w*nShards+si] {
			if ko.st.dirtySeq != seq {
				ko.st.dirtySeq = seq
				a.materializeLocked(sh, ko.st)
				a.forwardEWMALocked(sh, ko.st)
				sh.dirtyList = append(sh.dirtyList, plannedDest{key: ko.key, st: ko.st})
			}
		}
	}

	sh.cleanRounds++
	sh.refreshedAt = now
	sh.creditPending = true

	// Advance the still-active clean states. Groups dirtied this round are
	// kept on the list but handled below with their fresh Combine value. A
	// state parked until a future flip round is skipped without a single
	// write: every skipped round is a pure refresh, replayed by the lazy
	// credit when it wakes (or is redirtied, swept, or read).
	kept := sh.active[:0]
	for _, td := range sh.active {
		st := td.st
		if st.dirtySeq == seq {
			kept = append(kept, td)
			continue
		}
		if st.wakeAt > sh.cleanRounds {
			kept = append(kept, td)
			continue
		}
		if !st.hasLast {
			// The last Combine was rejected (NaN/±Inf); the full path
			// re-combines — and re-rejects — such a group every round.
			st.cleanSeen = sh.cleanRounds
			st.ewmaSeen = sh.cleanRounds
			a.recombineLocked(sh, td, obs, now)
			kept = append(kept, td)
			continue
		}
		// Settle any parked span first: credit and smoothing replay cover
		// the rounds through the previous one, the current round is then
		// handled eagerly by quiescentBody. The transient counter decrement
		// scopes both helpers to that boundary; states visited last round
		// have nothing to settle and skip the calls.
		if st.cleanSeen != sh.cleanRounds-1 || st.ewmaSeen != sh.cleanRounds-1 {
			sh.cleanRounds--
			a.materializeLocked(sh, st)
			a.forwardEWMALocked(sh, st)
			sh.cleanRounds++
		}
		st.cleanSeen = sh.cleanRounds
		st.ewmaSeen = sh.cleanRounds
		if a.quiescentBody(sh, td.key, st, st.lastValue, int(st.prevN), now) {
			k := a.freezeHorizon(st)
			if k == 0 {
				// Window frozen: drain from the active list entirely.
				st.inActive = false
				st.wakeAt = 0
				continue
			}
			st.wakeAt = sh.cleanRounds + uint64(k)
		} else {
			// The window moved (or an install is pending): recompute the
			// horizon on the next visit.
			st.wakeAt = 0
		}
		kept = append(kept, td)
	}
	sh.active = kept

	// Dirty groups: re-Combine from their member sample-indices and run the
	// full per-destination treatment. A converged state going dirty rejoins
	// the active list.
	for _, td := range sh.dirtyList {
		st := td.st
		st.cleanSeen = sh.cleanRounds
		st.ewmaSeen = sh.cleanRounds
		a.recombineLocked(sh, td, obs, now)
		if !st.inActive {
			st.inActive = true
			sh.active = append(sh.active, td)
		}
	}

	if sh.nextExpiry <= now {
		sh.delta.expiredDropped += a.sweepExpiredLocked(sh, now)
	}
}

// recombineLocked gathers a group's member observations (positions recorded
// at the last full rebuild, still exact on a stable round), re-runs Combine,
// and applies the per-destination pass. It reports whether the combined
// value was finite; a rejected value leaves the state exactly as the full
// path would — no refresh, hasLast cleared, the reject counted.
func (a *Agent) recombineLocked(sh *shard, td plannedDest, obs []Observation, now time.Duration) bool {
	st := td.st
	st.wakeAt = 0 // the combined value may move: horizon void
	n := int(st.prevN)
	if cap(sh.gather) < n {
		sh.gather = make([]Observation, 0, 2*n)
	}
	g := sh.gather[:0]
	for _, idx := range sh.memberIdx[st.memberOff : st.memberOff+st.prevN] {
		g = append(g, obs[idx])
	}
	value := a.cfg.Combiner.Combine(g)
	if !isFinite(value) {
		st.hasLast = false
		sh.delta.combinerRejects++
		return false
	}
	st.lastValue = value
	st.hasLast = true
	a.quiescentBody(sh, td.key, st, value, n, now)
	return true
}
