package core

import (
	"net/netip"
	"runtime"
	"sync"
	"time"
)

// This file holds the lock-striped shard machinery behind the agent's hot
// path. Per-destination state — the committed route entry, the smoothing
// state, and the per-tick grouping scratch — lives in ONE map slot per
// destination (destState), split across Config.Shards shards keyed by prefix
// hash. Tick fans its ingest and plan stages out over one worker per shard
// and merges the per-shard plans deterministically before the (short,
// global) commit stage. Collapsing entry + history + group bookkeeping into
// a single struct means the steady-state plan stage performs exactly one
// prefix-keyed map operation per observation; everything else is pointer
// chasing. See the pipeline overview in tick.go.

// maxShards bounds Config.Shards; beyond this the per-agent bucket matrix
// (shards² slice headers) costs more than the striping saves.
const maxShards = 256

// parallelThreshold is the observation count below which a tick stays on
// the serial path: spawning one goroutine per shard costs more than
// scanning a small sample set inline.
const parallelThreshold = 256

// defaultShards is the Config.Shards default: one shard per core, capped —
// plan-stage work per shard is tiny, so striping wider than 16 buys nothing
// while growing the bucket matrix quadratically.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// destState is everything the agent knows about one destination, in one map
// slot: the committed route entry (valid while installed is true), the
// inline EWMA smoothing state (used unless a caller supplied a History
// policy), and the plan stage's per-tick grouping scratch. Smoothing state
// outlives the installed route on purpose — a destination whose program
// keeps failing still accumulates history, exactly as the previous separate
// history map did.
type destState struct {
	entry
	// installed marks that a route is programmed and the embedded entry
	// fields are live; Lookup/Entries/snapshots ignore the state otherwise.
	installed bool

	// Inline smoothing state for the default per-shard EWMA path.
	ewma    float64
	hasEwma bool

	// Plan-stage scratch (tickMu only): the tick sequence this state was
	// last touched in, and its group's span in the shard arena.
	seq  uint64
	span groupSpan
}

// shard is one lock stripe of the agent's per-destination state, plus the
// scratch its plan worker reuses across ticks. mu guards states against
// concurrent readers (Lookup, Entries, ExportSnapshot) and cross-tick
// mutators; the scratch slices are touched only by the shard's worker under
// tickMu.
type shard struct {
	mu     sync.Mutex
	states map[netip.Prefix]*destState
	// installed counts states with a live route, maintained at every
	// commit/withdraw site — a sizing hint for Entries and snapshots.
	installed int
	// history is non-nil only when the caller supplied a shared History
	// policy; the default EWMA smoothing is inlined in destState.
	history HistoryPolicy

	// Plan-stage scratch, reused across ticks (tickMu only).
	touched     []plannedDest
	arena       []Observation
	plan        []programOp
	guardClears []netip.Prefix
	expired     []netip.Prefix
	delta       tickDelta
}

// plannedDest is one destination observed this tick, in first-encounter
// (original sample) order.
type plannedDest struct {
	key netip.Prefix
	st  *destState
}

// groupSpan locates one destination's observations inside the shard's arena.
type groupSpan struct {
	off, n, fill int32
}

// keyedObs is one valid observation routed to a shard: the destination's
// route key plus the observation's index in the tick's sample slice. The
// plan stage resolves st once per observation (the hot path's only map
// lookup) and reuses the pointer for the arena fill pass.
type keyedObs struct {
	key netip.Prefix
	st  *destState
	idx int32
}

// tickDelta accumulates one shard's stat deltas during the plan stage; the
// commit stage folds them into Stats under a.mu.
type tickDelta struct {
	combinerRejects  uint64
	advisorRejects   uint64
	guardCapped      uint64
	guardVetoed      uint64
	guardQuarantined uint64
}

func (d *tickDelta) add(o tickDelta) {
	d.combinerRejects += o.combinerRejects
	d.advisorRejects += o.advisorRejects
	d.guardCapped += o.guardCapped
	d.guardVetoed += o.guardVetoed
	d.guardQuarantined += o.guardQuarantined
}

// shardIndex maps a route key to its stripe: FNV-1a over the canonical
// 16-byte address plus the mask length.
func (a *Agent) shardIndex(p netip.Prefix) int {
	if len(a.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	b := p.Addr().As16()
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= uint64(uint8(p.Bits()))
	h *= prime64
	return int(h % uint64(len(a.shards)))
}

func (a *Agent) shardFor(p netip.Prefix) *shard {
	return a.shards[a.shardIndex(p)]
}

// smooth folds value into the destination's smoothing state: the inline
// EWMA (bit-identical to EWMAHistory.Update) unless a caller-supplied
// policy is installed.
func (a *Agent) smooth(sh *shard, st *destState, key netip.Prefix, value float64) float64 {
	if sh.history != nil {
		return sh.history.Update(key, value)
	}
	if !st.hasEwma {
		st.ewma = value
		st.hasEwma = true
		return value
	}
	st.ewma = a.cfg.Alpha*st.ewma + (1-a.cfg.Alpha)*value
	return st.ewma
}

// forgetHistory drops a destination's smoothing state in a caller-supplied
// policy; the inline EWMA state dies with its destState map slot, which
// every caller deletes alongside this call.
func (a *Agent) forgetHistory(sh *shard, key netip.Prefix) {
	if sh.history != nil {
		sh.history.Forget(key)
	}
}

// dropInstalled removes dst's state (and any external history) after its
// route was withdrawn, under the shard lock. It reports whether a live
// entry existed.
func (sh *shard) dropInstalled(a *Agent, dst netip.Prefix) bool {
	st, ok := sh.states[dst]
	if !ok || !st.installed {
		return false
	}
	delete(sh.states, dst)
	sh.installed--
	a.forgetHistory(sh, dst)
	return true
}

// lockedHistory serializes a caller-supplied HistoryPolicy that is shared
// across shards. Updates are keyed per prefix, so serializing them in
// whatever order the plan workers arrive cannot change any smoothed value.
type lockedHistory struct {
	mu    sync.Mutex
	inner HistoryPolicy
}

func (l *lockedHistory) Name() string { return l.inner.Name() }

func (l *lockedHistory) Update(dst netip.Prefix, value float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Update(dst, value)
}

func (l *lockedHistory) Forget(dst netip.Prefix) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Forget(dst)
}

// runParallel runs fn(0..n-1), inline when n == 1.
func runParallel(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// ingestChunk validates and routes worker w's contiguous chunk of the
// sample slice: invalid observations are dropped, the rest get their route
// key, are shown to the governor, and land in the worker's per-shard
// buckets. Chunks are contiguous and buckets worker-major, so replaying
// buckets in worker order during the plan stage reconstructs the original
// sample order exactly — the shard count can never change what a Combiner
// sees.
func (a *Agent) ingestChunk(w int, obs []Observation) {
	nShards := len(a.shards)
	chunk := (len(obs) + a.ingestWorkers - 1) / a.ingestWorkers
	lo := w * chunk
	hi := lo + chunk
	if hi > len(obs) {
		hi = len(obs)
	}
	for i := lo; i < hi; i++ {
		o := &obs[i]
		if o.Cwnd <= 0 || !o.Dst.IsValid() {
			continue
		}
		key, err := a.destKey(o.Dst)
		if err != nil {
			continue
		}
		if a.cfg.Guard != nil {
			a.cfg.Guard.ObserveSample(key, *o)
		}
		s := a.shardIndex(key)
		a.buckets[w*nShards+s] = append(a.buckets[w*nShards+s], keyedObs{key: key, idx: int32(i)})
	}
}

// planShard runs the plan stage for one shard, under the shard lock: resolve
// each routed observation to its destState (one map operation per
// observation — the hot path's entire map traffic), lay the groups out
// contiguously in the arena preserving sample order, then combine, smooth,
// clamp, let the governor review, refresh live entries, and emit the shard's
// route plan, guard clears, and expiry candidates into its scratch slices.
func (a *Agent) planShard(si int, obs []Observation, now time.Duration) {
	sh := a.shards[si]
	nShards := len(a.shards)
	sh.plan = sh.plan[:0]
	sh.guardClears = sh.guardClears[:0]
	sh.expired = sh.expired[:0]
	sh.touched = sh.touched[:0]

	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Pass 1: resolve states and count groups. Replaying the worker-major
	// buckets in worker order visits observations in original sample order,
	// so first-encounter order (sh.touched) is deterministic for every
	// shard and worker count.
	seq := a.tickSeq
	total := 0
	for w := 0; w < a.ingestWorkers; w++ {
		bucket := a.buckets[w*nShards+si]
		total += len(bucket)
		for j := range bucket {
			ko := &bucket[j]
			st := sh.states[ko.key]
			if st == nil {
				st = &destState{}
				sh.states[ko.key] = st
			}
			if st.seq != seq {
				st.seq = seq
				st.span = groupSpan{}
				sh.touched = append(sh.touched, plannedDest{key: ko.key, st: st})
			}
			st.span.n++
			ko.st = st
		}
	}

	// Pass 2: assign arena offsets and fill groups in sample order.
	off := int32(0)
	for _, td := range sh.touched {
		td.st.span.off = off
		off += td.st.span.n
	}
	if cap(sh.arena) < total {
		sh.arena = make([]Observation, total)
	}
	arena := sh.arena[:total]
	for w := 0; w < a.ingestWorkers; w++ {
		for _, ko := range a.buckets[w*nShards+si] {
			sp := &ko.st.span
			arena[sp.off+sp.fill] = obs[ko.idx]
			sp.fill++
		}
	}

	// Pass 3: per destination — combine, smooth, clamp, review, refresh.
	for _, td := range sh.touched {
		st := td.st
		group := arena[st.span.off : st.span.off+st.span.n]
		value := a.cfg.Combiner.Combine(group)
		if !isFinite(value) {
			// A custom Combiner produced NaN/±Inf: skip the round for
			// this destination rather than folding garbage into history
			// (an EWMA never recovers from a NaN).
			sh.delta.combinerRejects++
			continue
		}
		smoothed := a.smooth(sh, st, td.key, value)
		if a.cfg.Advisor != nil {
			if m := a.cfg.Advisor.Advise(td.key); isFinite(m) {
				smoothed *= m
			} else {
				sh.delta.advisorRejects++
			}
		}
		final := a.clamp(smoothed)

		if a.cfg.Guard != nil {
			capped, action := a.cfg.Guard.Review(td.key, final)
			switch action {
			case GuardVeto, GuardQuarantine:
				sh.delta.guardVetoed++
				if action == GuardQuarantine {
					sh.delta.guardQuarantined++
				}
				// An installed route for a held-back destination is
				// withdrawn (outside the locks, in the program stage).
				// The entry is only dropped once the clear succeeds, so
				// a failed withdrawal retries next round.
				if st.installed {
					sh.guardClears = append(sh.guardClears, td.key)
				}
				continue
			case GuardCap:
				if capped < final {
					if capped < a.cfg.CMin {
						capped = a.cfg.CMin
					}
					if capped < final {
						final = capped
						sh.delta.guardCapped++
					}
				}
			}
		}

		n := int(st.span.n)
		if st.installed {
			// The route is installed; fresh observations extend its
			// life even if programming the new value fails later.
			st.expires = now + a.cfg.TTL
			st.updated = now
			st.lastObs = n
			st.samples += uint64(n)
			// A local observation confirms (and from now on owns) an
			// entry that was seeded from a fleet snapshot.
			st.merged = false
			st.mergedAge = 0
			if st.window != final {
				sh.plan = append(sh.plan, programOp{dst: td.key, window: final, obs: n})
			}
		} else {
			// New destination: the entry is recorded in the program
			// stage, only once the route is actually installed.
			sh.plan = append(sh.plan, programOp{dst: td.key, window: final, obs: n})
		}
	}
	for dst, st := range sh.states {
		if st.installed && st.expires <= now {
			sh.expired = append(sh.expired, dst)
		}
	}
}
