package core

import (
	"net/netip"
	"strconv"
	"sync"
)

// Incremental content digest.
//
// The gossip layer (internal/gossip) summarizes a table as DigestBuckets
// XOR-folded entry hashes so converged peers can prove "nothing changed"
// in O(1) bytes. Before this file, producing that digest cost a full
// ExportDelta(0) scan — O(table) per serve, per peer, per round, even when
// the answer was identical every time. The agent now maintains the bucket
// hashes online: every commit that changes exported content (a route
// program, a fleet merge seed, a withdrawal) XOR-patches the one affected
// bucket under digestMu, so ContentDigest answers in O(shards-free, just
// quarantine overlay) work no matter how large the table is.
//
// Invariant: a destState's content hash is folded into digestBuckets iff
// st.installed — exactly the set ExportDelta(0) exports. Quarantine markers
// are governor state on the governor's own clock (a marker can appear or
// lapse without any agent commit), so they are not tracked incrementally;
// ContentDigest overlays them at read time in O(markers).
//
// Lock order: the fold/unfold patch sites run under their shard's mu and
// take digestMu inside it. digestMu is a leaf lock — nothing is acquired
// while holding it.

// DigestBuckets is the fixed width of the fleet content digest. It is the
// canonical value behind gossip.NumBuckets; changing it is a gossip wire
// format change.
const DigestBuckets = 64

// FNV-1a 64-bit parameters (hash/fnv), inlined so the per-commit patch and
// the per-entry hash need no hasher allocation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// digestPrefixSeed returns the FNV-1a state after hashing a prefix's
// canonical CIDR text — both the bucket selector (seed % DigestBuckets) and
// the resumable front half of the entry hash. It is bit-identical to
// hash/fnv's New64a over the same bytes.
func digestPrefixSeed(prefix string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(prefix); i++ {
		h ^= uint64(prefix[i])
		h *= fnvPrime64
	}
	return h
}

// digestFinish continues a prefix seed with the entry's remaining durable
// content: "|<window>" and, for quarantine markers, "|q". Samples, age, and
// mod version are deliberately excluded — they churn every round without
// changing what a peer would learn (see gossip.Compute).
func digestFinish(seed uint64, window int, quarantined bool) uint64 {
	h := seed
	h ^= '|'
	h *= fnvPrime64
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], int64(window), 10) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	if quarantined {
		h ^= '|'
		h *= fnvPrime64
		h ^= 'q'
		h *= fnvPrime64
	}
	return h
}

// DigestBucketOf maps a prefix in CIDR text form to its digest bucket.
func DigestBucketOf(prefix string) int {
	return int(digestPrefixSeed(prefix) % DigestBuckets)
}

// DigestEntryHash hashes one exported entry's durable content (prefix,
// window, quarantine flag). gossip.Compute folds exactly this value into
// DigestBucketOf(prefix)'s bucket; the incremental accumulator folds it at
// each commit.
func DigestEntryHash(prefix string, window int, quarantined bool) uint64 {
	return digestFinish(digestPrefixSeed(prefix), window, quarantined)
}

// digestAccum is the agent's live digest accumulator: the XOR-folded bucket
// hashes and the count of folded (installed) entries.
type digestAccum struct {
	mu      sync.Mutex
	buckets [DigestBuckets]uint64
	live    int
}

// digestFold folds st's content hash into the accumulator after a commit
// installed it. Called under the owning shard's mu. The FNV state after the
// prefix text is cached on the state the first time — slab slots are never
// recarved for a different prefix, so the seed stays valid for the struct's
// lifetime and later refolds hash only the window digits.
func (a *Agent) digestFold(dst netip.Prefix, st *destState) {
	if !st.digSeeded {
		st.digSeed = digestPrefixSeed(dst.String())
		st.digSeeded = true
	}
	h := digestFinish(st.digSeed, st.window, false)
	b := st.digSeed % DigestBuckets
	a.digest.mu.Lock()
	a.digest.buckets[b] ^= h
	a.digest.live++
	a.digest.mu.Unlock()
	st.digHash = h
}

// digestRefold swaps an installed entry's folded hash after its window
// changed, in one critical section so readers never observe the entry
// half-removed. Called under the owning shard's mu.
func (a *Agent) digestRefold(dst netip.Prefix, st *destState) {
	if !st.digSeeded {
		st.digSeed = digestPrefixSeed(dst.String())
		st.digSeeded = true
	}
	h := digestFinish(st.digSeed, st.window, false)
	b := st.digSeed % DigestBuckets
	a.digest.mu.Lock()
	a.digest.buckets[b] ^= st.digHash ^ h
	a.digest.mu.Unlock()
	st.digHash = h
}

// digestUnfold removes an installed entry's folded hash when its route is
// withdrawn (expiry, guard clear, absorption, fallback clear). Called under
// the owning shard's mu, before the state is dropped.
func (a *Agent) digestUnfold(st *destState) {
	b := st.digSeed % DigestBuckets
	a.digest.mu.Lock()
	a.digest.buckets[b] ^= st.digHash
	a.digest.live--
	a.digest.mu.Unlock()
	st.digHash = 0
}

// digestReset zeroes the accumulator (Close wipes the whole table).
func (a *Agent) digestReset() {
	a.digest.mu.Lock()
	a.digest.buckets = [DigestBuckets]uint64{}
	a.digest.live = 0
	a.digest.mu.Unlock()
}

// ContentDigest returns the agent's table version, exported-entry count, and
// the DigestBuckets XOR-folded content hashes — byte-identical to hashing a
// full ExportDelta(0) through gossip.Compute, without the O(table) scan.
// The version is read before the buckets, preserving ExportDelta's
// conservative race semantics: a commit landing mid-read can only make the
// reported version older than the content, so a peer re-pulls, never skips.
func (a *Agent) ContentDigest() (version uint64, count int, buckets []uint64) {
	version = a.tableVer.Load()
	buckets = make([]uint64, DigestBuckets)
	a.digest.mu.Lock()
	copy(buckets, a.digest.buckets[:])
	count = a.digest.live
	a.digest.mu.Unlock()
	count += a.foldQuarantines(buckets)
	return version, count, buckets
}

// foldQuarantines overlays the governor's current quarantine markers onto a
// bucket copy, applying the same live-entry exclusion as ExportDelta (a
// prefix with an installed entry is not marked — overlap means the
// quarantine already recovered). Returns the number of markers folded.
func (a *Agent) foldQuarantines(buckets []uint64) int {
	if a.cfg.Guard == nil {
		return 0
	}
	n := 0
	for _, q := range a.cfg.Guard.Quarantines() {
		key := q.Prefix.Masked()
		sh := a.shardFor(key)
		sh.mu.Lock()
		st, ok := sh.states[key]
		exists := ok && st.installed
		sh.mu.Unlock()
		if exists {
			continue
		}
		seed := digestPrefixSeed(key.String())
		buckets[seed%DigestBuckets] ^= digestFinish(seed, 0, true)
		n++
	}
	return n
}

// ContentToken returns a cheap revalidation token for response caches: the
// table version plus an order-independent XOR fold of the current quarantine
// markers. Cached encodings of this agent's digest/delta/snapshot bodies are
// current exactly while the token is unchanged — the version covers every
// entry-table commit, the marker fold covers governor transitions that move
// no version (a quarantine lapsing into probing). Cost is O(markers), zero
// for agents without a governor.
func (a *Agent) ContentToken() (version uint64, markers uint64) {
	version = a.tableVer.Load()
	if a.cfg.Guard == nil {
		return version, 0
	}
	for _, q := range a.cfg.Guard.Quarantines() {
		key := q.Prefix.Masked()
		sh := a.shardFor(key)
		sh.mu.Lock()
		st, ok := sh.states[key]
		exists := ok && st.installed
		sh.mu.Unlock()
		if exists {
			continue
		}
		seed := digestPrefixSeed(key.String())
		markers ^= digestFinish(seed, 0, true)
	}
	return version, markers
}
