package core

import (
	"net/netip"
	"time"
)

// This file defines the agent side of the closed-loop safety governor
// (internal/guard): a hook in the tick pipeline that watches the outcome of
// jump-started connections and caps or vetoes route programs when a
// destination's loss regresses.
//
// The agent feeds the governor every sampled connection (stage 1, lock-free),
// closes the round with ObserveTick so the governor can advance its state
// machines, and then consults Review for every destination it is about to
// program (stage 2, under the state lock — implementations must not call
// back into the agent). MergeSnapshot consults Review too, so a fleet
// snapshot can never warm-start a route the governor is holding back.

// GuardAction is the governor's verdict on one planned route program.
type GuardAction int

const (
	// GuardAllow programs the route as planned.
	GuardAllow GuardAction = iota
	// GuardCap programs the route, but at no more than the returned window.
	GuardCap
	// GuardVeto skips the program and clears any installed route — the
	// destination stays at the kernel default (canary holdback).
	GuardVeto
	// GuardQuarantine is GuardVeto for a destination the governor has
	// quarantined after a loss regression; the agent additionally counts it
	// separately and the quarantine is exported in fleet snapshots.
	GuardQuarantine
)

// String returns the action name.
func (a GuardAction) String() string {
	switch a {
	case GuardAllow:
		return "allow"
	case GuardCap:
		return "cap"
	case GuardVeto:
		return "veto"
	case GuardQuarantine:
		return "quarantine"
	default:
		return "unknown"
	}
}

// Quarantine is one destination the governor currently refuses to program.
type Quarantine struct {
	// Prefix is the quarantined destination.
	Prefix netip.Prefix
	// Age is how long ago the quarantine began, against the agent's clock.
	Age time.Duration
}

// Governor is the safety-governor hook (implemented by internal/guard).
// Implementations must be safe for concurrent use and must never call back
// into the Agent: ObserveSample and ObserveTick run during stage 1 of a tick
// (no agent lock held), Review runs under the agent's state lock.
type Governor interface {
	// ObserveSample feeds one sampled connection, keyed by its
	// route-granularity destination prefix. This is the per-sample hot
	// path; implementations must not allocate for already-known
	// destinations.
	ObserveSample(dst netip.Prefix, o Observation)
	// ObserveTick closes one sampling round at the given (monotonic) time:
	// the governor folds the round's samples into its per-destination loss
	// estimates and advances quarantine/recovery state machines.
	ObserveTick(now time.Duration)
	// Review judges a planned route program and returns the allowed window
	// (meaningful for GuardCap) and the action. The agent treats GuardVeto
	// and GuardQuarantine identically in the pipeline — skip the program,
	// clear any installed route — but counts them separately.
	Review(dst netip.Prefix, window int) (int, GuardAction)
	// Quarantines lists the currently quarantined destinations for
	// snapshot export, so peers do not warm-start a route the origin just
	// withdrew for safety.
	Quarantines() []Quarantine
}
