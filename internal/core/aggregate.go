package core

import (
	"net/netip"
	"time"
)

// Adaptive prefix aggregation (Config.AggregateBits): when the children of
// one covering /AggregateBits prefix converge on similar learned windows,
// the agent installs a single broader route at the most conservative child
// window and withdraws the children. Longest-prefix match makes every
// transition safe without ordering constraints beyond "install before
// withdraw":
//
//   - formation programs the covering route first, then clears the child
//     routes (which the broader route now shadows from below — a child
//     route left behind by a failed clear simply keeps winning LPM);
//   - a child whose learned window diverges from the aggregate gets its
//     specific route reinstalled, which shadows the aggregate immediately;
//   - dissolution reinstalls the absorbed children first, then withdraws
//     the covering route — coverage never gaps.
//
// Absorbed children keep their destState: they continue to sample, smooth,
// and refresh TTLs (their freshness also refreshes the covering route), so
// a split reinstalls the window the child would have been running anyway.
// Aggregate routes themselves are never guard-reviewed — their children
// are, and a veto or quarantine of an absorbed child forces the aggregate
// apart (the veto cannot carve a hole in a broader route).
//
// All aggregation state lives on the shard that owns the covering prefix;
// shardIndex hashes children by their covering key so parent and children
// are always co-located and the aggregate pass never crosses stripes.

// aggState tracks one covering prefix's membership. Guarded by the owning
// shard's mu, like states.
type aggState struct {
	// children maps child route key → state, maintained at state
	// creation/deletion; only installed or absorbed members count toward
	// formation and dissolution decisions.
	children map[netip.Prefix]*destState
	// window is the covering route's window while installed is true.
	window    int
	installed bool
	// dirty marks the parent queued in sh.dirtyAggs.
	dirty bool
	// force requests dissolution regardless of membership (guard veto of
	// an absorbed child).
	force bool
}

// aggEnabled reports whether adaptive prefix aggregation is configured.
func (a *Agent) aggEnabled() bool { return a.cfg.AggregateBits > 0 }

// aggKey returns the covering aggregate prefix for a route key, and whether
// the key participates in aggregation (it must be strictly longer than the
// aggregate granularity; IPv4 keys cannot aggregate into an IPv6-sized
// covering prefix or vice versa because the family is preserved).
func (a *Agent) aggKey(p netip.Prefix) (netip.Prefix, bool) {
	bits := a.cfg.AggregateBits
	if bits <= 0 || p.Bits() <= bits {
		return netip.Prefix{}, false
	}
	parent, err := p.Addr().Prefix(bits)
	if err != nil {
		return netip.Prefix{}, false
	}
	return parent, true
}

// aggRegister records a newly created state in its covering prefix's
// membership. Called at every state-creation site, under the shard lock.
func (a *Agent) aggRegister(sh *shard, key netip.Prefix, st *destState) {
	parent, ok := a.aggKey(key)
	if !ok {
		return
	}
	agg := sh.aggs[parent]
	if agg == nil {
		agg = &aggState{children: make(map[netip.Prefix]*destState)}
		sh.aggs[parent] = agg
	}
	agg.children[key] = st
	a.aggMarkDirty(sh, parent, agg)
}

// aggUnregister removes a deleted state from aggregation bookkeeping: a
// child leaves its parent's membership; a covering prefix's own state going
// away marks the aggregate uninstalled. Called from dropState.
func (a *Agent) aggUnregister(sh *shard, key netip.Prefix) {
	if !a.aggEnabled() {
		return
	}
	if key.Bits() <= a.cfg.AggregateBits {
		// The covering route's own state was dropped (expired or cleared
		// elsewhere); surviving members re-plan on the next aggregate pass.
		if agg := sh.aggs[key]; agg != nil && agg.installed {
			agg.installed = false
			a.aggMarkDirty(sh, key, agg)
		}
		return
	}
	parent, ok := a.aggKey(key)
	if !ok {
		return
	}
	agg := sh.aggs[parent]
	if agg == nil {
		return
	}
	delete(agg.children, key)
	if len(agg.children) == 0 && !agg.installed && !agg.dirty {
		delete(sh.aggs, parent)
		return
	}
	a.aggMarkDirty(sh, parent, agg)
}

// aggMarkDirty queues the parent for the next aggregate pass, once.
func (a *Agent) aggMarkDirty(sh *shard, parent netip.Prefix, agg *aggState) {
	if !agg.dirty {
		agg.dirty = true
		sh.dirtyAggs = append(sh.dirtyAggs, parent)
	}
}

// aggregatePass re-evaluates every covering prefix whose membership or
// windows changed since the last pass, under the shard lock (it runs inside
// planShard after pass 3, so child windows are this round's). It emits the
// shard's aggregate route ops (sh.plan), child withdrawals (sh.absorbs),
// and covering-route withdrawals (sh.dissolves); commits happen in the
// program stage, which re-marks parents dirty on failure so decisions
// retry. Membership iteration order is irrelevant: the emitted ops are
// sorted globally before programming.
func (a *Agent) aggregatePass(sh *shard, now time.Duration) {
	if !a.aggEnabled() || len(sh.dirtyAggs) == 0 {
		return
	}
	minChildren := a.cfg.AggregateMinChildren
	tol := a.cfg.AggregateTolerance
	for _, parent := range sh.dirtyAggs {
		agg := sh.aggs[parent]
		if agg == nil {
			continue
		}
		agg.dirty = false
		if len(agg.children) == 0 && !agg.installed {
			delete(sh.aggs, parent)
			continue
		}

		installedN, absorbedN := 0, 0
		minW, maxW := 0, 0
		for _, cst := range agg.children {
			switch {
			case cst.installed:
				installedN++
			case cst.absorbed:
				absorbedN++
			default:
				continue
			}
			if installedN+absorbedN == 1 {
				minW, maxW = cst.window, cst.window
				continue
			}
			if cst.window < minW {
				minW = cst.window
			}
			if cst.window > maxW {
				maxW = cst.window
			}
		}
		members := installedN + absorbedN

		if agg.installed {
			force := agg.force
			agg.force = false
			switch {
			case force || members < minChildren:
				// Dissolve: reinstall the absorbed children at the windows
				// they have kept learning (sets run before clears, so
				// coverage never gaps), then withdraw the covering route.
				for ckey, cst := range agg.children {
					if cst.absorbed {
						sh.plan = append(sh.plan, programOp{dst: ckey, window: cst.window, obs: cst.lastObs, shard: sh.idx})
					}
				}
				sh.dissolves = append(sh.dissolves, parent)
			case absorbedN == 0:
				// Every member split back out (or a previous dissolve's
				// covering-route clear failed and its reinstalls stuck):
				// the covering route serves nobody — withdraw it.
				sh.dissolves = append(sh.dissolves, parent)
			default:
				// Re-absorb installed children that sit within tolerance
				// of the covering window (new arrivals inside the prefix,
				// or split children that converged back).
				for ckey, cst := range agg.children {
					if cst.installed && absInt(cst.window-agg.window) <= tol {
						sh.absorbs = append(sh.absorbs, ckey)
					}
				}
			}
			continue
		}

		if installedN >= minChildren && maxW-minW <= tol {
			// Form: one covering route at the most conservative member
			// window; the children are withdrawn only after it installs.
			agg.window = minW
			sh.plan = append(sh.plan, programOp{dst: parent, window: minW, aggregate: true, shard: sh.idx})
			for ckey, cst := range agg.children {
				if cst.installed {
					sh.absorbs = append(sh.absorbs, ckey)
				}
			}
		}
	}
	sh.dirtyAggs = sh.dirtyAggs[:0]
}

// absInt is |v| for window distances.
func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
