package core

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// scriptedGovernor is a test double for the governor: Review answers come
// from a per-destination script that tests mutate between ticks.
type scriptedGovernor struct {
	mu      sync.Mutex
	actions map[netip.Prefix]GuardAction
	windows map[netip.Prefix]int // window returned with GuardCap
	samples []Observation
	ticks   int
	quar    []Quarantine
}

func newScriptedGovernor() *scriptedGovernor {
	return &scriptedGovernor{
		actions: make(map[netip.Prefix]GuardAction),
		windows: make(map[netip.Prefix]int),
	}
}

func (s *scriptedGovernor) set(dst netip.Prefix, a GuardAction, window int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.actions[dst] = a
	s.windows[dst] = window
}

func (s *scriptedGovernor) ObserveSample(_ netip.Prefix, o Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, o)
}

func (s *scriptedGovernor) ObserveTick(time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
}

func (s *scriptedGovernor) Review(dst netip.Prefix, window int) (int, GuardAction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.actions[dst]
	if !ok {
		return window, GuardAllow
	}
	if a == GuardCap {
		return s.windows[dst], GuardCap
	}
	return 0, a
}

func (s *scriptedGovernor) Quarantines() []Quarantine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantine(nil), s.quar...)
}

var _ Governor = (*scriptedGovernor)(nil)

// TestGovernorPlannerInteraction is the satellite's table-driven check of
// the four Review outcomes inside one tick.
func TestGovernorPlannerInteraction(t *testing.T) {
	cases := []struct {
		name       string
		action     GuardAction
		capWindow  int
		wantWindow int  // programmed window; 0 = no route
		wantCapped bool // GuardCapped incremented
		wantVetoed bool
	}{
		{name: "allow", action: GuardAllow, wantWindow: 50},
		{name: "capped", action: GuardCap, capWindow: 25, wantWindow: 25, wantCapped: true},
		{name: "cap above plan is a no-op", action: GuardCap, capWindow: 60, wantWindow: 50},
		{name: "cap floors at CMin", action: GuardCap, capWindow: 3, wantWindow: 10, wantCapped: true},
		{name: "vetoed", action: GuardVeto, wantWindow: 0, wantVetoed: true},
		{name: "quarantined", action: GuardQuarantine, wantWindow: 0, wantVetoed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := dst(t, "10.0.0.1")
			p := pfx(t, "10.0.0.1/32")
			gov := newScriptedGovernor()
			gov.set(p, tc.action, tc.capWindow)
			sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
			a, routes, _ := newAgent(t, Config{Sampler: sampler, Guard: gov, History: NoHistory{}})
			if err := a.Tick(); err != nil {
				t.Fatal(err)
			}
			got, installed := routes.set[p]
			if tc.wantWindow == 0 {
				if installed {
					t.Errorf("route installed at %d, want none", got)
				}
			} else if got != tc.wantWindow {
				t.Errorf("programmed window = %d, want %d", got, tc.wantWindow)
			}
			st := a.Stats()
			if capped := st.GuardCapped == 1; capped != tc.wantCapped {
				t.Errorf("GuardCapped = %d, want capped=%v", st.GuardCapped, tc.wantCapped)
			}
			if vetoed := st.GuardVetoed == 1; vetoed != tc.wantVetoed {
				t.Errorf("GuardVetoed = %d, want vetoed=%v", st.GuardVetoed, tc.wantVetoed)
			}
			if tc.action == GuardQuarantine && st.GuardQuarantined != 1 {
				t.Errorf("GuardQuarantined = %d, want 1", st.GuardQuarantined)
			}
		})
	}
}

func TestGovernorFeedsOnSamplesAndTicks(t *testing.T) {
	d := dst(t, "10.0.0.1")
	gov := newScriptedGovernor()
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: d, Cwnd: 50, Retrans: 7, SegsOut: 900},
		{Dst: d, Cwnd: 40, Retrans: 1, SegsOut: 100},
	}}}
	a, _, _ := newAgent(t, Config{Sampler: sampler, Guard: gov})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if gov.ticks != 2 {
		t.Errorf("ObserveTick calls = %d, want 2", gov.ticks)
	}
	if len(gov.samples) != 4 {
		t.Fatalf("ObserveSample calls = %d, want 4", len(gov.samples))
	}
	// Telemetry fields travel intact from sampler to governor.
	if gov.samples[0].Retrans != 7 || gov.samples[0].SegsOut != 900 {
		t.Errorf("sample telemetry = %+v, want Retrans 7 / SegsOut 900", gov.samples[0])
	}
}

// TestQuarantineClearsRouteExactlyOnce: the veto withdraws an installed
// route on the first tick, and subsequent vetoed ticks do not re-clear.
func TestQuarantineClearsRouteExactlyOnce(t *testing.T) {
	d := dst(t, "10.0.0.1")
	p := pfx(t, "10.0.0.1/32")
	gov := newScriptedGovernor()
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Guard: gov})

	if err := a.Tick(); err != nil { // healthy: route installs
		t.Fatal(err)
	}
	if _, ok := routes.set[p]; !ok {
		t.Fatal("route not installed while healthy")
	}

	gov.set(p, GuardQuarantine, 0)
	if err := a.Tick(); err != nil { // quarantine: route cleared
		t.Fatal(err)
	}
	if _, ok := routes.set[p]; ok {
		t.Fatal("route still installed after quarantine")
	}
	if routes.clrOps != 1 {
		t.Fatalf("clear ops = %d, want 1", routes.clrOps)
	}
	if _, ok := a.Lookup(d); ok {
		t.Error("Lookup still reports the quarantined entry")
	}

	for i := 0; i < 3; i++ { // still quarantined: nothing left to clear
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if routes.clrOps != 1 {
		t.Errorf("clear ops after repeat vetoes = %d, want exactly 1", routes.clrOps)
	}
	st := a.Stats()
	if st.GuardCleared != 1 {
		t.Errorf("GuardCleared = %d, want 1", st.GuardCleared)
	}
	if st.GuardVetoed != 4 || st.GuardQuarantined != 4 {
		t.Errorf("GuardVetoed/GuardQuarantined = %d/%d, want 4/4", st.GuardVetoed, st.GuardQuarantined)
	}
}

// TestGuardClearFailureRetriesNextRound: a failed withdrawal keeps the entry
// so the clear is retried, and the route is never silently leaked.
func TestGuardClearFailureRetriesNextRound(t *testing.T) {
	d := dst(t, "10.0.0.1")
	p := pfx(t, "10.0.0.1/32")
	gov := newScriptedGovernor()
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Guard: gov})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}

	gov.set(p, GuardQuarantine, 0)
	routes.failClr = errors.New("ip route del exploded")
	if err := a.Tick(); err == nil {
		t.Fatal("clear failure swallowed")
	}
	if _, ok := routes.set[p]; !ok {
		t.Fatal("fake lost the route despite failed clear")
	}

	routes.failClr = nil
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := routes.set[p]; ok {
		t.Error("route still installed after retried clear")
	}
	if routes.clrOps != 1 {
		t.Errorf("successful clear ops = %d, want 1", routes.clrOps)
	}
}

// TestRecoveryReprogramsAfterCoolDown: when the governor stops vetoing, the
// next tick's observations re-program the destination.
func TestRecoveryReprogramsAfterCoolDown(t *testing.T) {
	d := dst(t, "10.0.0.1")
	p := pfx(t, "10.0.0.1/32")
	gov := newScriptedGovernor()
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Guard: gov, History: NoHistory{}})

	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	gov.set(p, GuardQuarantine, 0)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := routes.set[p]; ok {
		t.Fatal("route survived quarantine")
	}

	// Cool-down over: the governor probes at half window first.
	gov.set(p, GuardCap, 25)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := routes.set[p]; got != 25 {
		t.Fatalf("probe window = %d, want 25", got)
	}

	// Fully recovered: the plan goes through unmodified again.
	gov.set(p, GuardAllow, 0)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := routes.set[p]; got != 50 {
		t.Errorf("recovered window = %d, want 50", got)
	}
}

// TestGuardVetoWithNoInstalledRoute: vetoing a destination that never got a
// route programs nothing and clears nothing.
func TestGuardVetoWithNoInstalledRoute(t *testing.T) {
	d := dst(t, "10.0.0.1")
	p := pfx(t, "10.0.0.1/32")
	gov := newScriptedGovernor()
	gov.set(p, GuardVeto, 0)
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Guard: gov})
	for i := 0; i < 3; i++ {
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if routes.setOps != 0 || routes.clrOps != 0 {
		t.Errorf("route ops = %d set / %d clear, want 0/0", routes.setOps, routes.clrOps)
	}
	if st := a.Stats(); st.RouteErrors != 0 {
		t.Errorf("RouteErrors = %d, want 0", st.RouteErrors)
	}
}

// --- Snapshot integration --------------------------------------------------

func TestExportSnapshotCarriesQuarantineMarkers(t *testing.T) {
	d := dst(t, "10.0.0.1")
	gov := newScriptedGovernor()
	gov.quar = []Quarantine{
		{Prefix: pfx(t, "10.0.0.9/32"), Age: 30 * time.Second},
		{Prefix: pfx(t, "10.0.0.1/32"), Age: 5 * time.Second}, // overlaps live entry
	}
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, _, _ := newAgent(t, Config{Sampler: sampler, Guard: gov})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}

	snap := a.ExportSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot entries = %d, want 2 (live + marker)", len(snap))
	}
	var marker *SnapshotEntry
	for i := range snap {
		if snap[i].Quarantined {
			marker = &snap[i]
		}
	}
	if marker == nil {
		t.Fatal("no quarantine marker exported")
	}
	if marker.Prefix != pfx(t, "10.0.0.9/32") || marker.Window != 0 || marker.Age != 30*time.Second {
		t.Errorf("marker = %+v, want 10.0.0.9/32 window 0 age 30s", *marker)
	}
	// The live entry's prefix must not be exported as quarantined too.
	for _, se := range snap {
		if se.Prefix == pfx(t, "10.0.0.1/32") && se.Quarantined {
			t.Error("live entry exported as quarantined")
		}
	}
}

func TestMergeSnapshotSkipsQuarantinedEntries(t *testing.T) {
	a, routes, _ := newAgent(t, Config{})
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.0.0.9/32"), Quarantined: true, Age: 10 * time.Second},
		{Prefix: pfx(t, "10.0.0.2/32"), Window: 40, Samples: 5, Age: time.Second},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedQuarantined != 1 || stats.Merged != 1 {
		t.Fatalf("stats = %+v, want 1 skipped-quarantined + 1 merged", stats)
	}
	if _, ok := routes.set[pfx(t, "10.0.0.9/32")]; ok {
		t.Error("quarantined remote entry was programmed")
	}
	if _, ok := routes.set[pfx(t, "10.0.0.2/32")]; !ok {
		t.Error("healthy remote entry was not programmed")
	}
	if st := a.Stats(); st.FleetSkippedQuarantined != 1 {
		t.Errorf("FleetSkippedQuarantined = %d, want 1", st.FleetSkippedQuarantined)
	}
}

// TestMergeSnapshotConsultsLocalGovernor: a locally quarantined destination
// has no local entry (its route was cleared), so the local-entry check alone
// would let a peer snapshot re-program it. The governor must veto the seed.
func TestMergeSnapshotConsultsLocalGovernor(t *testing.T) {
	gov := newScriptedGovernor()
	gov.set(pfx(t, "10.0.0.9/32"), GuardQuarantine, 0)
	gov.set(pfx(t, "10.0.0.8/32"), GuardCap, 20)
	a, routes, _ := newAgent(t, Config{Guard: gov})

	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.0.0.9/32"), Window: 80, Samples: 5},
		{Prefix: pfx(t, "10.0.0.8/32"), Window: 80, Samples: 5},
		{Prefix: pfx(t, "10.0.0.7/32"), Window: 80, Samples: 5},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedQuarantined != 1 || stats.Merged != 2 {
		t.Fatalf("stats = %+v, want 1 skipped + 2 merged", stats)
	}
	if _, ok := routes.set[pfx(t, "10.0.0.9/32")]; ok {
		t.Error("locally quarantined destination re-programmed from peer snapshot")
	}
	if got := routes.set[pfx(t, "10.0.0.8/32")]; got != 20 {
		t.Errorf("governor-capped merge window = %d, want 20", got)
	}
	if got := routes.set[pfx(t, "10.0.0.7/32")]; got != 80 {
		t.Errorf("unguarded merge window = %d, want 80", got)
	}
}
