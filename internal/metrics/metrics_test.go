package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestHistogramBucketsObservations(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0 (<= 1ms)
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf bucket
	h.Observe(-time.Second)           // clamped to zero -> bucket 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + inf)", len(s.Buckets))
	}
	wantCounts := []uint64{3, 1, 0, 1}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Buckets[3].UpperNanos != -1 {
		t.Errorf("last bucket upper = %d, want -1 (+Inf)", s.Buckets[3].UpperNanos)
	}
	wantSum := int64(500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second)
	if s.SumNanos != wantSum {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, wantSum)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	if got, want := len(h.Snapshot().Buckets), len(DefaultBuckets)+1; got != want {
		t.Errorf("default buckets = %d, want %d", got, want)
	}
}

func TestHistogramUnsortedBoundsDeduped(t *testing.T) {
	h := NewHistogram(time.Second, time.Millisecond, time.Second)
	s := h.Snapshot()
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 2 bounds + inf", s.Buckets)
	}
	if s.Buckets[0].UpperNanos != int64(time.Millisecond) {
		t.Errorf("bounds not sorted: %+v", s.Buckets)
	}
}

func TestRegistryLazyCreationAndIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if c2 := r.Counter("x"); c1 != c2 || c2.Value() != 1 {
		t.Error("Counter did not return the same instance")
	}
	h1 := r.Histogram("d", time.Millisecond)
	h1.Observe(time.Microsecond)
	if h2 := r.Histogram("d", time.Hour); h1 != h2 || h2.Count() != 1 {
		t.Error("Histogram did not return the same instance")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Add(7)
	r.Histogram("lat", time.Millisecond).Observe(2 * time.Millisecond)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["ticks"] != 7 {
		t.Errorf("counters = %+v", s.Counters)
	}
	lat, ok := s.Histograms["lat"]
	if !ok || lat.Count != 1 {
		t.Errorf("histograms = %+v", s.Histograms)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
