// Package metrics provides the lightweight instrumentation primitives the
// Riptide agent uses to observe its own behaviour in production: atomic
// counters and fixed-bucket latency histograms, grouped in a Registry that
// snapshots to a JSON-friendly document.
//
// The package is deliberately dependency-free and allocation-light: every
// Observe/Inc on a registered metric is a handful of atomic operations, so
// the hot tick path can record sample/program/tick durations without
// contending with the readers it was restructured to unblock.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefaultBuckets are the histogram upper bounds used when none are given:
// 500µs to 10s in roughly exponential steps, spanning in-memory sim ticks up
// to a hung 5s ExecRunner timeout.
var DefaultBuckets = []time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram counts duration observations into fixed buckets. All methods are
// safe for concurrent use.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram returns a histogram over the given bucket upper bounds
// (DefaultBuckets when none are given). Bounds are sorted and deduplicated.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	sorted := append([]time.Duration(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{
		bounds: dedup,
		counts: make([]atomic.Uint64, len(dedup)+1),
	}
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bucket is one histogram bucket in a snapshot. UpperNanos is the bucket's
// inclusive upper bound in nanoseconds; -1 marks the +Inf bucket. Count is
// the number of observations in this bucket alone (not cumulative).
type Bucket struct {
	UpperNanos int64  `json:"upperNanos"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	SumNanos int64    `json:"sumNanos"`
	Buckets  []Bucket `json:"buckets"`
}

// Snapshot copies the histogram's current state. Concurrent observations may
// land between bucket reads; totals are therefore approximate under load,
// which is acceptable for operational metrics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		Buckets:  make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		upper := int64(-1)
		if i < len(h.bounds) {
			upper = int64(h.bounds[i])
		}
		s.Buckets[i] = Bucket{UpperNanos: upper, Count: h.counts[i].Load()}
	}
	return s
}

// Registry holds named counters and histograms. The zero value is not
// usable; create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it with the given bounds
// (DefaultBuckets when none) on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds...)
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped for
// JSON encoding (the /metrics.json document's "metrics" section).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
