package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file provides the two-sample comparison machinery the reproduction
// report uses to say something stronger than "the medians differ": a
// Kolmogorov–Smirnov distance with asymptotic significance, and bootstrap
// confidence intervals for percentile gains.

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// Statistic is D, the maximum vertical distance between the two
	// empirical CDFs, in [0, 1].
	Statistic float64 `json:"statistic"`
	// PValue is the asymptotic two-sided significance: the probability of
	// observing a distance this large if both samples came from the same
	// distribution.
	PValue float64 `json:"pValue"`
}

// KolmogorovSmirnov computes the two-sample KS test between a and b.
func KolmogorovSmirnov(a, b *CDF) (KSResult, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return KSResult{}, ErrNoSamples
	}
	as, bs := a.Samples(), b.Samples()

	// Walk both sorted sample sets, tracking the max CDF gap.
	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		gap := math.Abs(float64(i)/na - float64(j)/nb)
		if gap > d {
			d = gap
		}
	}

	// Asymptotic p-value via the Kolmogorov distribution.
	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{Statistic: d, PValue: ksProb(lambda)}, nil
}

// ksProb is the Kolmogorov distribution tail Q(lambda) = 2 sum_{k>=1}
// (-1)^(k-1) exp(-2 k^2 lambda^2), clamped to [0, 1].
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// GainCI is a bootstrap confidence interval for a percentile gain.
type GainCI struct {
	// Percentile the gain was evaluated at, in [0, 100].
	Percentile float64 `json:"percentile"`
	// Gain is the point estimate (a_p - b_p) / a_p.
	Gain float64 `json:"gain"`
	// Lo and Hi bound the central 95% bootstrap interval.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// BootstrapGainCI estimates a 95% confidence interval for the relative gain
// of b over a at the given percentile by resampling both sets `iters` times
// with the supplied RNG. iters of ~1000 gives stable two-digit intervals.
func BootstrapGainCI(a, b *CDF, percentile float64, iters int, rng *rand.Rand) (GainCI, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return GainCI{}, ErrNoSamples
	}
	if iters < 10 {
		return GainCI{}, fmt.Errorf("stats: bootstrap iters %d too small", iters)
	}
	if rng == nil {
		return GainCI{}, fmt.Errorf("stats: nil rng")
	}
	point, err := gainAt(a, b, percentile)
	if err != nil {
		return GainCI{}, err
	}

	as, bs := a.Samples(), b.Samples()
	gains := make([]float64, 0, iters)
	ra := make([]float64, len(as))
	rb := make([]float64, len(bs))
	for it := 0; it < iters; it++ {
		for i := range ra {
			ra[i] = as[rng.Intn(len(as))]
		}
		for i := range rb {
			rb[i] = bs[rng.Intn(len(bs))]
		}
		g, err := gainAt(FromSamples(ra), FromSamples(rb), percentile)
		if err != nil {
			return GainCI{}, err
		}
		gains = append(gains, g)
	}
	sort.Float64s(gains)
	lo := gains[int(0.025*float64(len(gains)))]
	hi := gains[int(0.975*float64(len(gains)))]
	return GainCI{Percentile: percentile, Gain: point, Lo: lo, Hi: hi}, nil
}

func gainAt(a, b *CDF, percentile float64) (float64, error) {
	av, err := a.Percentile(percentile)
	if err != nil {
		return 0, err
	}
	bv, err := b.Percentile(percentile)
	if err != nil {
		return 0, err
	}
	if av == 0 {
		return 0, nil
	}
	return (av - bv) / av, nil
}
