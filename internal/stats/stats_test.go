package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if got := c.At(10); got != 0 {
		t.Errorf("At on empty CDF = %v, want 0", got)
	}
	if _, err := c.Percentile(50); err != ErrNoSamples {
		t.Errorf("Percentile on empty CDF err = %v, want ErrNoSamples", err)
	}
	if _, err := c.Mean(); err != ErrNoSamples {
		t.Errorf("Mean on empty CDF err = %v, want ErrNoSamples", err)
	}
	if pts := c.Curve(10); pts != nil {
		t.Errorf("Curve on empty CDF = %v, want nil", pts)
	}
}

func TestCDFAt(t *testing.T) {
	c := FromSamples([]float64{1, 2, 3, 4})
	tests := []struct {
		v    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.v); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestCDFPercentile(t *testing.T) {
	c := FromSamples([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{25, 20},
		{50, 30},
		{75, 40},
		{100, 50},
		{12.5, 15}, // interpolated
	}
	for _, tt := range tests {
		got, err := c.Percentile(tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v) err: %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCDFPercentileOutOfRange(t *testing.T) {
	c := FromSamples([]float64{1})
	for _, p := range []float64{-1, 101} {
		if _, err := c.Percentile(p); err == nil {
			t.Errorf("Percentile(%v) succeeded, want error", p)
		}
	}
}

func TestCDFSingleSample(t *testing.T) {
	c := FromSamples([]float64{42})
	for _, p := range []float64{0, 50, 100} {
		got, err := c.Percentile(p)
		if err != nil || got != 42 {
			t.Errorf("Percentile(%v) = %v, %v; want 42, nil", p, got, err)
		}
	}
}

func TestCDFMinMaxMean(t *testing.T) {
	c := FromSamples([]float64{3, 1, 2})
	if v, _ := c.Min(); v != 1 {
		t.Errorf("Min = %v, want 1", v)
	}
	if v, _ := c.Max(); v != 3 {
		t.Errorf("Max = %v, want 3", v)
	}
	if v, _ := c.Mean(); v != 2 {
		t.Errorf("Mean = %v, want 2", v)
	}
}

func TestCDFCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCDF(1000)
	for i := 0; i < 1000; i++ {
		c.Add(rng.NormFloat64() * 10)
	}
	pts := c.Curve(50)
	if len(pts) != 50 {
		t.Fatalf("Curve returned %d points, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF curve not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("CDF curve does not reach 1 at max: %v", pts[len(pts)-1].Y)
	}
}

func TestCDFSamplesIsCopy(t *testing.T) {
	c := FromSamples([]float64{2, 1})
	s := c.Samples()
	s[0] = 999
	if v, _ := c.Min(); v != 1 {
		t.Errorf("mutating Samples() result changed the CDF: min = %v", v)
	}
}

// Property: percentiles are monotone non-decreasing in p.
func TestCDFPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 101)
		p2 = math.Mod(math.Abs(p2), 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		c := FromSamples(samples)
		v1, err1 := c.Percentile(p1)
		v2, err2 := c.Percentile(p2)
		return err1 == nil && err2 == nil && v1 <= v2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At is bounded in [0,1] and At(max) == 1.
func TestCDFAtBoundsProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				samples = append(samples, v)
			}
		}
		c := FromSamples(samples)
		y := c.At(probe)
		if y < 0 || y > 1 {
			return false
		}
		if len(samples) > 0 {
			mx, _ := c.Max()
			if c.At(mx) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewEWMA(bad); err == nil {
			t.Errorf("NewEWMA(%v) succeeded, want error", bad)
		}
	}
	for _, ok := range []float64{0, 0.5, 1} {
		if _, err := NewEWMA(ok); err != nil {
			t.Errorf("NewEWMA(%v) err: %v", ok, err)
		}
	}
}

func TestEWMAFirstObservation(t *testing.T) {
	e, _ := NewEWMA(0.9)
	if _, ok := e.Value(); ok {
		t.Error("Value ok before any update")
	}
	if got := e.Update(50); got != 50 {
		t.Errorf("first Update = %v, want 50", got)
	}
}

func TestEWMAPaperWeighting(t *testing.T) {
	// alpha weights history: next = 0.75*prev + 0.25*obs.
	e, _ := NewEWMA(0.75)
	e.Update(100)
	got := e.Update(0)
	if !almostEqual(got, 75, 1e-9) {
		t.Errorf("EWMA after 100 then 0 = %v, want 75", got)
	}
}

func TestEWMAAlphaZeroTracksObservation(t *testing.T) {
	e, _ := NewEWMA(0)
	e.Update(10)
	if got := e.Update(99); got != 99 {
		t.Errorf("alpha=0 EWMA = %v, want 99", got)
	}
}

func TestEWMAAlphaOneFrozen(t *testing.T) {
	e, _ := NewEWMA(1)
	e.Update(10)
	if got := e.Update(99); got != 10 {
		t.Errorf("alpha=1 EWMA = %v, want 10", got)
	}
}

func TestEWMAReset(t *testing.T) {
	e, _ := NewEWMA(0.5)
	e.Update(10)
	e.Reset()
	if _, ok := e.Value(); ok {
		t.Error("Value ok after Reset")
	}
	if got := e.Update(20); got != 20 {
		t.Errorf("Update after Reset = %v, want 20", got)
	}
}

// Property: EWMA output is always between min and max of all observations.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(alphaRaw float64, obs []float64) bool {
		alpha := math.Mod(math.Abs(alphaRaw), 1)
		e, err := NewEWMA(alpha)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, o := range obs {
			if math.IsNaN(o) || math.IsInf(o, 0) {
				continue
			}
			lo = math.Min(lo, o)
			hi = math.Max(hi, o)
			v := e.Update(o)
			if v < lo-1e-6 || v > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d,%d; want 1,2", under, over)
	}
	if n, lo, hi := h.Bucket(0); n != 2 || lo != 0 || hi != 2 {
		t.Errorf("Bucket(0) = %d [%v,%v), want 2 [0,2)", n, lo, hi)
	}
	if n, _, _ := h.Bucket(1); n != 1 {
		t.Errorf("Bucket(1) = %d, want 1", n)
	}
	if n, _, _ := h.Bucket(4); n != 1 {
		t.Errorf("Bucket(4) = %d, want 1", n)
	}
}

func TestHistogramTotalConservedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h, err := NewHistogram(-100, 100, 32)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			c, _, _ := h.Bucket(i)
			sum += c
		}
		u, o := h.OutOfRange()
		return sum+u+o == uint64(n) && h.Total() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCDF(100)
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	s, err := Summarize(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.Mean, 50.5, 1e-9) {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if !almostEqual(s.Median, 50.5, 1e-9) {
		t.Errorf("Median = %v, want 50.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(&CDF{}); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestRelativeGain(t *testing.T) {
	base := FromSamples([]float64{100, 200, 300})
	improved := FromSamples([]float64{50, 100, 150})
	gains, err := RelativeGain(base, improved, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gains {
		if !almostEqual(g, 0.5, 1e-9) {
			t.Errorf("gain[%d] = %v, want 0.5", i, g)
		}
	}
}

func TestRelativeGainZeroBaseline(t *testing.T) {
	base := FromSamples([]float64{0})
	improved := FromSamples([]float64{5})
	gains, err := RelativeGain(base, improved, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if gains[0] != 0 {
		t.Errorf("gain with zero baseline = %v, want 0", gains[0])
	}
}

func TestRelativeGainEmpty(t *testing.T) {
	if _, err := RelativeGain(&CDF{}, FromSamples([]float64{1}), []float64{50}); err == nil {
		t.Error("RelativeGain with empty baseline succeeded")
	}
}

func TestPercentileSteps(t *testing.T) {
	got := PercentileSteps(5, 95, 5)
	if len(got) != 19 {
		t.Fatalf("len = %d, want 19 (%v)", len(got), got)
	}
	if got[0] != 5 || got[len(got)-1] != 95 {
		t.Errorf("bounds = %v..%v, want 5..95", got[0], got[len(got)-1])
	}
	if PercentileSteps(10, 5, 5) != nil {
		t.Error("reversed range should be nil")
	}
	if PercentileSteps(0, 10, 0) != nil {
		t.Error("zero step should be nil")
	}
}
