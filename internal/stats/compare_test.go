package stats

import (
	"math/rand"
	"testing"
)

func normalSamples(rng *rand.Rand, n int, mean, sd float64) *CDF {
	c := NewCDF(n)
	for i := 0; i < n; i++ {
		c.Add(mean + sd*rng.NormFloat64())
	}
	return c
}

func TestKSIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := normalSamples(rng, 2000, 0, 1)
	b := normalSamples(rng, 2000, 0, 1)
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 0.06 {
		t.Errorf("D = %v for same-distribution samples, want small", res.Statistic)
	}
	if res.PValue < 0.05 {
		t.Errorf("p = %v for same-distribution samples, want not significant", res.PValue)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := normalSamples(rng, 2000, 0, 1)
	b := normalSamples(rng, 2000, 1, 1) // shifted by one SD
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic < 0.3 {
		t.Errorf("D = %v for shifted distributions, want large", res.Statistic)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %v for shifted distributions, want tiny", res.PValue)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(&CDF{}, FromSamples([]float64{1})); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestKSStatisticBounds(t *testing.T) {
	// Completely disjoint samples: D must be 1.
	a := FromSamples([]float64{1, 2, 3})
	b := FromSamples([]float64{100, 200, 300})
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("D = %v for disjoint samples, want 1", res.Statistic)
	}
	if res.PValue > 0.1 {
		t.Errorf("p = %v for disjoint samples", res.PValue)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := normalSamples(rng, 500, 0, 1)
	b := normalSamples(rng, 700, 0.5, 2)
	ab, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := KolmogorovSmirnov(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Statistic != ba.Statistic {
		t.Errorf("KS not symmetric: %v vs %v", ab.Statistic, ba.Statistic)
	}
}

func TestKsProbBounds(t *testing.T) {
	if ksProb(0) != 1 {
		t.Errorf("ksProb(0) = %v, want 1", ksProb(0))
	}
	if p := ksProb(5); p > 1e-9 {
		t.Errorf("ksProb(5) = %v, want ~0", p)
	}
	for _, l := range []float64{0.1, 0.5, 1, 2} {
		p := ksProb(l)
		if p < 0 || p > 1 {
			t.Errorf("ksProb(%v) = %v out of [0,1]", l, p)
		}
	}
}

func TestBootstrapGainCI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// b is uniformly half of a: true gain = 0.5 at every percentile.
	a, b := NewCDF(500), NewCDF(500)
	for i := 0; i < 500; i++ {
		v := 100 + rng.Float64()*100
		a.Add(v)
		b.Add(v / 2)
	}
	ci, err := BootstrapGainCI(a, b, 75, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Gain < 0.45 || ci.Gain > 0.55 {
		t.Errorf("gain = %v, want ~0.5", ci.Gain)
	}
	if ci.Lo > ci.Gain || ci.Hi < ci.Gain {
		t.Errorf("interval [%v, %v] does not contain point %v", ci.Lo, ci.Hi, ci.Gain)
	}
	if ci.Hi-ci.Lo > 0.2 {
		t.Errorf("interval [%v, %v] too wide for clean data", ci.Lo, ci.Hi)
	}
}

func TestBootstrapGainCIValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := FromSamples([]float64{1, 2, 3})
	if _, err := BootstrapGainCI(&CDF{}, full, 50, 100, rng); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := BootstrapGainCI(full, full, 50, 1, rng); err == nil {
		t.Error("tiny iteration count accepted")
	}
	if _, err := BootstrapGainCI(full, full, 50, 100, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestBootstrapGainCIZeroBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := FromSamples([]float64{0, 0, 0})
	b := FromSamples([]float64{1, 2, 3})
	ci, err := BootstrapGainCI(a, b, 50, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Gain != 0 {
		t.Errorf("gain with zero baseline = %v, want 0", ci.Gain)
	}
}
