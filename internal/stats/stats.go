// Package stats provides the statistical primitives used throughout the
// Riptide reproduction: empirical CDFs, percentile estimation, exponentially
// weighted moving averages, histograms, and small summary helpers.
//
// Everything here is deterministic and allocation-conscious; the experiment
// harness calls these routines over millions of samples.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by estimators that need at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is an empty CDF ready for Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns a CDF pre-sized for n samples.
func NewCDF(n int) *CDF {
	return &CDF{samples: make([]float64, 0, n)}
}

// FromSamples builds a CDF from a copy of the provided samples.
func FromSamples(samples []float64) *CDF {
	c := NewCDF(len(samples))
	c.AddAll(samples)
	return c
}

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll records every sample in vs.
func (c *CDF) AddAll(vs []float64) {
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// Len reports the number of samples recorded.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= v), the fraction of samples at or below v.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	// First index with sample > v.
	idx := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > v })
	return float64(idx) / float64(len(c.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks.
func (c *CDF) Percentile(p float64) (float64, error) {
	if len(c.samples) == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	c.ensureSorted()
	if len(c.samples) == 1 {
		return c.samples[0], nil
	}
	rank := p / 100 * float64(len(c.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.samples[lo], nil
	}
	frac := rank - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac, nil
}

// MustPercentile is Percentile for callers that know the CDF is non-empty.
// It panics on error; reserve it for tests and experiment code over data the
// caller just generated.
func (c *CDF) MustPercentile(p float64) float64 {
	v, err := c.Percentile(p)
	if err != nil {
		panic(err)
	}
	return v
}

// Median returns the 50th percentile.
func (c *CDF) Median() (float64, error) { return c.Percentile(50) }

// Min returns the smallest sample.
func (c *CDF) Min() (float64, error) {
	if len(c.samples) == 0 {
		return 0, ErrNoSamples
	}
	c.ensureSorted()
	return c.samples[0], nil
}

// Max returns the largest sample.
func (c *CDF) Max() (float64, error) {
	if len(c.samples) == 0 {
		return 0, ErrNoSamples
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1], nil
}

// Mean returns the arithmetic mean of the samples.
func (c *CDF) Mean() (float64, error) {
	if len(c.samples) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples)), nil
}

// Point is one (x, y) pair of a rendered CDF curve, y = P(X <= x).
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Curve renders the CDF as n evenly spaced points across the sample range,
// suitable for plotting or textual comparison. It returns nil for an empty
// CDF or n < 2.
func (c *CDF) Curve(n int) []Point {
	if len(c.samples) == 0 || n < 2 {
		return nil
	}
	c.ensureSorted()
	lo, hi := c.samples[0], c.samples[len(c.samples)-1]
	pts := make([]Point, n)
	for i := range pts {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		if i == n-1 {
			x = hi // pin exactly so the curve reaches P = 1 despite float rounding
		}
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Quantiles returns the values at each requested percentile, in order.
func (c *CDF) Quantiles(ps []float64) ([]float64, error) {
	out := make([]float64, len(ps))
	for i, p := range ps {
		v, err := c.Percentile(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Samples returns a copy of the recorded samples in sorted order.
func (c *CDF) Samples() []float64 {
	c.ensureSorted()
	out := make([]float64, len(c.samples))
	copy(out, c.samples)
	return out
}

// EWMA is an exponentially weighted moving average. The weight alpha is
// applied to the *historical* value, matching the Riptide paper:
//
//	next = alpha*previous + (1-alpha)*observation
//
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns an EWMA with history weight alpha in [0, 1]. alpha = 0
// ignores history entirely; alpha = 1 never updates after the first sample.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("stats: EWMA alpha %v out of range [0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Update folds one observation into the average and returns the new value.
// The first observation becomes the value directly.
func (e *EWMA) Update(observation float64) float64 {
	if !e.started {
		e.value = observation
		e.started = true
		return e.value
	}
	e.value = e.alpha*e.value + (1-e.alpha)*observation
	return e.value
}

// Value returns the current average. ok is false before any Update.
func (e *EWMA) Value() (v float64, ok bool) { return e.value, e.started }

// Reset discards all history.
func (e *EWMA) Reset() {
	e.value = 0
	e.started = false
}

// Alpha returns the configured history weight.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Histogram counts samples into fixed-width buckets over [lo, hi). Samples
// outside the range land in saturating under/overflow buckets.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram builds a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bucket, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(n),
		counts: make([]uint64, n),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.lo:
		h.underflow++
	case v >= h.hi:
		h.overflow++
	default:
		idx := int((v - h.lo) / h.width)
		if idx >= len(h.counts) { // guard against float rounding at hi
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Total reports the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count of bucket i and its [lo, hi) bounds.
func (h *Histogram) Bucket(i int) (count uint64, lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return h.counts[i], lo, lo + h.width
}

// Buckets reports the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.underflow, h.overflow }

// Summary holds the five-number-plus-mean summary of a sample set.
type Summary struct {
	Count  int     `json:"count"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// Summarize computes a Summary for the samples in c.
func Summarize(c *CDF) (Summary, error) {
	if c.Len() == 0 {
		return Summary{}, ErrNoSamples
	}
	qs, err := c.Quantiles([]float64{0, 25, 50, 75, 90, 99, 100})
	if err != nil {
		return Summary{}, err
	}
	mean, err := c.Mean()
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Count:  c.Len(),
		Min:    qs[0],
		P25:    qs[1],
		Median: qs[2],
		P75:    qs[3],
		P90:    qs[4],
		P99:    qs[5],
		Max:    qs[6],
		Mean:   mean,
	}, nil
}

// RelativeGain returns the fractional improvement of measured b over baseline
// a at each requested percentile: (a_p - b_p) / a_p. Positive values mean b
// (e.g. Riptide) is faster/smaller than a (the control).
func RelativeGain(a, b *CDF, percentiles []float64) ([]float64, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return nil, ErrNoSamples
	}
	gains := make([]float64, len(percentiles))
	for i, p := range percentiles {
		av, err := a.Percentile(p)
		if err != nil {
			return nil, err
		}
		bv, err := b.Percentile(p)
		if err != nil {
			return nil, err
		}
		if av == 0 {
			gains[i] = 0
			continue
		}
		gains[i] = (av - bv) / av
	}
	return gains, nil
}

// PercentileSteps returns percentiles from start to end inclusive in the given
// step, e.g. PercentileSteps(5, 95, 5) = [5 10 ... 95]. It returns nil when
// the parameters describe an empty range.
func PercentileSteps(start, end, step float64) []float64 {
	if step <= 0 || end < start {
		return nil
	}
	var out []float64
	for p := start; p <= end+1e-9; p += step {
		out = append(out, p)
	}
	return out
}
