// Package tcpsim models TCP congestion-window dynamics at RTT-round
// granularity: slow start, congestion avoidance under Reno AIMD or CUBIC
// growth, fast-recovery multiplicative decrease, and retransmission-timeout
// collapse.
//
// Riptide (the system under study) never replaces TCP's congestion control —
// it only chooses the *initial* window. Everything after the first round is
// ordinary TCP behaviour, which this package reproduces faithfully enough
// that the evaluation figures retain their published shapes.
//
// The unit of simulated time is one ACK-clocked round (one RTT). A driver —
// internal/netsim — calls Ack or Loss once per round per connection.
package tcpsim

import (
	"fmt"
	"math"
	"time"
)

// Default protocol constants, matching Linux.
const (
	// DefaultInitCwnd is Linux's default initial window (RFC 6928).
	DefaultInitCwnd = 10
	// MinCwnd is the floor the window never drops below in recovery.
	MinCwnd = 2
	// RenoBeta is Reno's multiplicative-decrease factor.
	RenoBeta = 0.5
	// CubicBeta is CUBIC's multiplicative-decrease factor (Linux uses 717/1024).
	CubicBeta = 0.7
	// CubicC is CUBIC's scaling constant (RFC 8312).
	CubicC = 0.4
)

// Algorithm is a pluggable congestion-avoidance policy. Implementations
// mutate only the fields of Window they own (cwnd, ssthresh, private state
// accessed through the Window's algState).
type Algorithm interface {
	// Name identifies the algorithm ("reno", "cubic").
	Name() string
	// OnRoundAcked grows the window after a loss-free round in which
	// acked segments were cumulatively acknowledged.
	OnRoundAcked(w *Window, acked int, now time.Duration)
	// OnLoss applies the multiplicative decrease for a fast-retransmit
	// style loss event.
	OnLoss(w *Window, now time.Duration)
}

// Config configures a Window.
type Config struct {
	// InitCwnd is the initial congestion window in segments. This is the
	// knob Riptide turns. Defaults to DefaultInitCwnd when zero.
	InitCwnd int
	// Algorithm selects window growth. Defaults to NewCubic().
	Algorithm Algorithm
	// SsthreshInit is the initial slow-start threshold in segments.
	// Defaults to "infinite" (no threshold until the first loss), as in
	// Linux for fresh connections without cached metrics.
	SsthreshInit float64
	// DelayedAcks models a receiver acknowledging every other segment
	// (RFC 1122): slow-start growth halves to cwnd/2 per round instead of
	// doubling. The paper's closed-form model assumes no delayed ACKs, so
	// the default is off; turn it on for worst-case sensitivity analyses.
	DelayedAcks bool
}

// Window is the congestion-control state of one TCP connection.
type Window struct {
	cwnd        float64
	ssthresh    float64
	initCwnd    int
	alg         Algorithm
	delayedAcks bool

	// CUBIC per-connection state (kept here so Window stays a value bag
	// and algorithms stay stateless/shareable).
	cubicWMax       float64
	cubicEpochStart time.Duration
	cubicHasEpoch   bool

	lossEvents    uint64
	timeoutEvents uint64
	roundsAcked   uint64
	segsAcked     uint64
}

// NewWindow constructs a Window from cfg.
func NewWindow(cfg Config) (*Window, error) {
	iw := cfg.InitCwnd
	if iw == 0 {
		iw = DefaultInitCwnd
	}
	if iw < 1 {
		return nil, fmt.Errorf("tcpsim: initial cwnd %d must be >= 1", iw)
	}
	alg := cfg.Algorithm
	if alg == nil {
		alg = NewCubic()
	}
	ssthresh := cfg.SsthreshInit
	if ssthresh == 0 {
		ssthresh = math.Inf(1)
	}
	if ssthresh < MinCwnd {
		return nil, fmt.Errorf("tcpsim: initial ssthresh %v must be >= %d", ssthresh, MinCwnd)
	}
	return &Window{
		cwnd:        float64(iw),
		ssthresh:    ssthresh,
		initCwnd:    iw,
		alg:         alg,
		delayedAcks: cfg.DelayedAcks,
	}, nil
}

// Cwnd returns the current congestion window in whole segments (>= 1).
func (w *Window) Cwnd() int {
	c := int(w.cwnd)
	if c < 1 {
		return 1
	}
	return c
}

// CwndF returns the precise fractional window.
func (w *Window) CwndF() float64 { return w.cwnd }

// Ssthresh returns the slow-start threshold in segments (may be +Inf before
// any loss).
func (w *Window) Ssthresh() float64 { return w.ssthresh }

// InitCwnd returns the initial window the connection started with.
func (w *Window) InitCwnd() int { return w.initCwnd }

// InSlowStart reports whether the window is below the slow-start threshold.
func (w *Window) InSlowStart() bool { return w.cwnd < w.ssthresh }

// Algorithm returns the active congestion-avoidance policy.
func (w *Window) Algorithm() Algorithm { return w.alg }

// LossEvents returns the number of fast-retransmit loss events seen.
func (w *Window) LossEvents() uint64 { return w.lossEvents }

// TimeoutEvents returns the number of RTO collapses seen.
func (w *Window) TimeoutEvents() uint64 { return w.timeoutEvents }

// Rounds returns the number of loss-free acked rounds processed.
func (w *Window) Rounds() uint64 { return w.roundsAcked }

// SegsAcked returns the cumulative count of segments acknowledged across all
// acked rounds — the denominator a loss-rate telemetry consumer pairs with
// LossEvents.
func (w *Window) SegsAcked() uint64 { return w.segsAcked }

// Ack processes one loss-free round that cumulatively acknowledged acked
// segments at simulated time now.
func (w *Window) Ack(acked int, now time.Duration) {
	if acked <= 0 {
		return
	}
	w.roundsAcked++
	w.segsAcked += uint64(acked)
	if w.InSlowStart() {
		// Slow start: cwnd += number of ACKs received. With delayed
		// ACKs the receiver acknowledges every other segment, halving
		// the growth; otherwise the window doubles per full round.
		// Growth never overshoots ssthresh.
		growth := float64(acked)
		if w.delayedAcks {
			growth /= 2
		}
		w.cwnd += growth
		if w.cwnd > w.ssthresh && !math.IsInf(w.ssthresh, 1) {
			w.cwnd = w.ssthresh
		}
		return
	}
	w.alg.OnRoundAcked(w, acked, now)
}

// Loss processes a fast-retransmit loss event (triple duplicate ACK) at
// simulated time now.
func (w *Window) Loss(now time.Duration) {
	w.lossEvents++
	w.alg.OnLoss(w, now)
	if w.cwnd < MinCwnd {
		w.cwnd = MinCwnd
	}
	if w.ssthresh < MinCwnd {
		w.ssthresh = MinCwnd
	}
}

// RestartAfterIdle applies RFC 2861 congestion-window validation: after an
// idle period longer than the RTO, the window restarts from the (possibly
// route-supplied) initial window rather than bursting a stale large window
// into an unknown network. Linux enables this by default
// (tcp_slow_start_after_idle) and re-reads the destination route's initcwnd,
// which is how Riptide's learned windows benefit reused connections too.
// ssthresh is preserved, so growth back up is fast.
func (w *Window) RestartAfterIdle(restartCwnd int) {
	if restartCwnd < 1 {
		restartCwnd = 1
	}
	w.initCwnd = restartCwnd
	w.cwnd = float64(restartCwnd)
	w.cubicHasEpoch = false
}

// Timeout processes a retransmission timeout: ssthresh halves and the window
// collapses to one segment (RFC 5681), restarting slow start.
func (w *Window) Timeout(now time.Duration) {
	w.timeoutEvents++
	w.ssthresh = math.Max(w.cwnd/2, MinCwnd)
	w.cwnd = 1
	w.cubicHasEpoch = false
	_ = now
}

// Reno implements classic AIMD congestion avoidance (RFC 5681).
type Reno struct{}

// NewReno returns the Reno algorithm.
func NewReno() Reno { return Reno{} }

// Name implements Algorithm.
func (Reno) Name() string { return "reno" }

// OnRoundAcked implements Algorithm: cwnd grows by acked/cwnd per ACK, i.e.
// about one segment per round when a full window is acked.
func (Reno) OnRoundAcked(w *Window, acked int, _ time.Duration) {
	w.cwnd += float64(acked) / w.cwnd
}

// OnLoss implements Algorithm: multiplicative decrease by RenoBeta.
func (Reno) OnLoss(w *Window, _ time.Duration) {
	w.ssthresh = math.Max(w.cwnd*RenoBeta, MinCwnd)
	w.cwnd = w.ssthresh
}

// Cubic implements CUBIC congestion avoidance (RFC 8312), the Linux default
// the paper's deployment runs.
type Cubic struct{}

// NewCubic returns the CUBIC algorithm.
func NewCubic() Cubic { return Cubic{} }

// Name implements Algorithm.
func (Cubic) Name() string { return "cubic" }

// OnRoundAcked implements Algorithm: the window chases the cubic function
// W(t) = C·(t−K)³ + W_max anchored at the last congestion event.
func (Cubic) OnRoundAcked(w *Window, acked int, now time.Duration) {
	if !w.cubicHasEpoch {
		// First CA round with no prior congestion epoch: anchor the
		// cubic at the current window so growth starts in the flat
		// region around W_max.
		w.cubicWMax = w.cwnd
		w.cubicEpochStart = now
		w.cubicHasEpoch = true
	}
	t := (now - w.cubicEpochStart).Seconds()
	k := math.Cbrt(w.cubicWMax * (1 - CubicBeta) / CubicC)
	target := CubicC*math.Pow(t-k, 3) + w.cubicWMax
	switch {
	case target > w.cwnd:
		// Chase the target, at most doubling per round (TCP-friendly
		// upper bound on burstiness).
		step := (target - w.cwnd)
		if step > w.cwnd {
			step = w.cwnd
		}
		w.cwnd += step
	default:
		// In the concave plateau or below target: grow slowly like
		// Reno so the window is never frozen.
		w.cwnd += float64(acked) / (100 * w.cwnd)
	}
}

// OnLoss implements Algorithm: remember W_max, cut by CubicBeta, restart the
// cubic epoch.
func (Cubic) OnLoss(w *Window, now time.Duration) {
	w.cubicWMax = w.cwnd
	w.cwnd = math.Max(w.cwnd*CubicBeta, MinCwnd)
	w.ssthresh = w.cwnd
	w.cubicEpochStart = now
	w.cubicHasEpoch = true
}

var (
	_ Algorithm = Reno{}
	_ Algorithm = Cubic{}
)

// AlgorithmByName returns the algorithm with the given name.
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "reno":
		return NewReno(), nil
	case "cubic":
		return NewCubic(), nil
	default:
		return nil, fmt.Errorf("tcpsim: unknown congestion algorithm %q", name)
	}
}
