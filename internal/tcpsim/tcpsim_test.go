package tcpsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustWindow(t *testing.T, cfg Config) *Window {
	t.Helper()
	w, err := NewWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWindowDefaults(t *testing.T) {
	w := mustWindow(t, Config{})
	if w.Cwnd() != DefaultInitCwnd {
		t.Errorf("default cwnd = %d, want %d", w.Cwnd(), DefaultInitCwnd)
	}
	if w.Algorithm().Name() != "cubic" {
		t.Errorf("default algorithm = %q, want cubic", w.Algorithm().Name())
	}
	if !math.IsInf(w.Ssthresh(), 1) {
		t.Errorf("default ssthresh = %v, want +Inf", w.Ssthresh())
	}
	if !w.InSlowStart() {
		t.Error("fresh window should be in slow start")
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(Config{InitCwnd: -1}); err == nil {
		t.Error("negative initcwnd accepted")
	}
	if _, err := NewWindow(Config{SsthreshInit: 1}); err == nil {
		t.Error("sub-minimum ssthresh accepted")
	}
}

func TestNewWindowCustomInitCwnd(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 80})
	if w.Cwnd() != 80 || w.InitCwnd() != 80 {
		t.Errorf("cwnd = %d initcwnd = %d, want 80/80", w.Cwnd(), w.InitCwnd())
	}
}

func TestSlowStartDoubles(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10, Algorithm: NewReno()})
	// Each loss-free round acks the full window, doubling it.
	want := []int{20, 40, 80, 160}
	for i, exp := range want {
		w.Ack(w.Cwnd(), time.Duration(i)*100*time.Millisecond)
		if w.Cwnd() != exp {
			t.Fatalf("round %d cwnd = %d, want %d", i, w.Cwnd(), exp)
		}
	}
	if w.Rounds() != 4 {
		t.Errorf("Rounds = %d, want 4", w.Rounds())
	}
}

func TestSlowStartCapsAtSsthresh(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10, SsthreshInit: 25, Algorithm: NewReno()})
	w.Ack(10, 0) // 10 -> 20
	w.Ack(20, 0) // would be 40, capped at ssthresh 25
	if w.CwndF() != 25 {
		t.Errorf("cwnd = %v, want capped at 25", w.CwndF())
	}
	if w.InSlowStart() {
		t.Error("window at ssthresh should be in congestion avoidance")
	}
}

func TestAckIgnoresNonPositive(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10})
	w.Ack(0, 0)
	w.Ack(-3, 0)
	if w.Cwnd() != 10 || w.Rounds() != 0 {
		t.Errorf("cwnd = %d rounds = %d after no-op acks", w.Cwnd(), w.Rounds())
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10, SsthreshInit: 10, Algorithm: NewReno()})
	// ssthresh == cwnd: not in slow start, so CA growth ~ +1/round.
	before := w.CwndF()
	w.Ack(w.Cwnd(), 0)
	after := w.CwndF()
	if growth := after - before; growth < 0.9 || growth > 1.1 {
		t.Errorf("CA round growth = %v, want ~1 segment", growth)
	}
}

func TestRenoLossHalvesWindow(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 100, Algorithm: NewReno()})
	w.Loss(0)
	if w.CwndF() != 50 {
		t.Errorf("cwnd after loss = %v, want 50", w.CwndF())
	}
	if w.Ssthresh() != 50 {
		t.Errorf("ssthresh after loss = %v, want 50", w.Ssthresh())
	}
	if w.LossEvents() != 1 {
		t.Errorf("LossEvents = %d, want 1", w.LossEvents())
	}
}

func TestCubicLossUsesBeta(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 100, Algorithm: NewCubic()})
	w.Loss(0)
	if got := w.CwndF(); math.Abs(got-70) > 1e-9 {
		t.Errorf("cwnd after CUBIC loss = %v, want 70", got)
	}
}

func TestLossNeverBelowMinCwnd(t *testing.T) {
	for _, alg := range []Algorithm{NewReno(), NewCubic()} {
		w := mustWindow(t, Config{InitCwnd: 1, Algorithm: alg})
		for i := 0; i < 10; i++ {
			w.Loss(time.Duration(i) * time.Second)
		}
		if w.CwndF() < MinCwnd {
			t.Errorf("%s cwnd = %v below MinCwnd", alg.Name(), w.CwndF())
		}
	}
}

func TestTimeoutCollapsesToOne(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 64, Algorithm: NewReno()})
	w.Timeout(0)
	if w.Cwnd() != 1 {
		t.Errorf("cwnd after timeout = %d, want 1", w.Cwnd())
	}
	if w.Ssthresh() != 32 {
		t.Errorf("ssthresh after timeout = %v, want 32", w.Ssthresh())
	}
	if !w.InSlowStart() {
		t.Error("window should re-enter slow start after timeout")
	}
	if w.TimeoutEvents() != 1 {
		t.Errorf("TimeoutEvents = %d, want 1", w.TimeoutEvents())
	}
}

func TestCubicRecoversTowardWMax(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 100, Algorithm: NewCubic()})
	w.Loss(0) // wMax=100, cwnd=70
	rtt := 100 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += rtt
		w.Ack(w.Cwnd(), now)
	}
	if w.CwndF() < 95 {
		t.Errorf("CUBIC cwnd after 20s = %v, want recovered toward wMax 100", w.CwndF())
	}
}

func TestCubicGrowthBoundedPerRound(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10, SsthreshInit: 10, Algorithm: NewCubic()})
	// Jump time far ahead so the cubic target is enormous; growth must
	// still at most double per round.
	before := w.CwndF()
	w.Ack(w.Cwnd(), time.Hour)
	if w.CwndF() > 2*before+1e-9 {
		t.Errorf("CUBIC grew %v -> %v in one round (more than doubled)", before, w.CwndF())
	}
}

func TestCwndFlooredAtOne(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 1, Algorithm: NewReno()})
	w.Timeout(0)
	if w.Cwnd() < 1 {
		t.Errorf("Cwnd = %d, want >= 1", w.Cwnd())
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"reno", "cubic"} {
		alg, err := AlgorithmByName(name)
		if err != nil || alg.Name() != name {
			t.Errorf("AlgorithmByName(%q) = %v, %v", name, alg, err)
		}
	}
	if _, err := AlgorithmByName("bbr"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestRiptideScenario is the end-to-end sanity check for the paper's core
// claim at this layer: a connection starting at a Riptide-learned window of
// 80 delivers 100KB-worth of segments in fewer rounds than the default.
func TestRiptideScenario(t *testing.T) {
	deliver := func(iw int) int {
		w := mustWindow(t, Config{InitCwnd: iw})
		remaining := 71 // 100KB in 1448B segments
		rounds := 0
		now := time.Duration(0)
		for remaining > 0 {
			send := w.Cwnd()
			if send > remaining {
				send = remaining
			}
			remaining -= send
			now += 100 * time.Millisecond
			w.Ack(send, now)
			rounds++
		}
		return rounds
	}
	if def, riptide := deliver(10), deliver(80); riptide >= def {
		t.Errorf("riptide rounds = %d, default = %d; want fewer", riptide, def)
	}
}

// Property: a loss event never increases the window, for either algorithm.
func TestLossNeverIncreasesWindowProperty(t *testing.T) {
	f := func(iwRaw uint8, useCubic bool, lossAtSec uint16) bool {
		var alg Algorithm = NewReno()
		if useCubic {
			alg = NewCubic()
		}
		w, err := NewWindow(Config{InitCwnd: int(iwRaw%250) + 1, Algorithm: alg})
		if err != nil {
			return false
		}
		before := w.CwndF()
		w.Loss(time.Duration(lossAtSec) * time.Second)
		return w.CwndF() <= before || before < MinCwnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cwnd stays >= 1 segment under any interleaving of acks, losses,
// and timeouts.
func TestCwndPositiveProperty(t *testing.T) {
	f := func(ops []uint8, useCubic bool) bool {
		var alg Algorithm = NewReno()
		if useCubic {
			alg = NewCubic()
		}
		w, err := NewWindow(Config{InitCwnd: 10, Algorithm: alg})
		if err != nil {
			return false
		}
		now := time.Duration(0)
		for _, op := range ops {
			now += 50 * time.Millisecond
			switch op % 3 {
			case 0:
				w.Ack(w.Cwnd(), now)
			case 1:
				w.Loss(now)
			case 2:
				w.Timeout(now)
			}
			if w.Cwnd() < 1 || math.IsNaN(w.CwndF()) || math.IsInf(w.CwndF(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: slow start from any initial window is capped by ssthresh.
func TestSlowStartRespectsSsthreshProperty(t *testing.T) {
	f := func(iwRaw, ssRaw uint8, rounds uint8) bool {
		iw := int(iwRaw%50) + 1
		ss := float64(ssRaw%200) + MinCwnd
		w, err := NewWindow(Config{InitCwnd: iw, SsthreshInit: ss, Algorithm: NewReno()})
		if err != nil {
			return false
		}
		now := time.Duration(0)
		for i := 0; i < int(rounds%20); i++ {
			now += 100 * time.Millisecond
			if !w.InSlowStart() {
				return true // reached CA, cap respected
			}
			w.Ack(w.Cwnd(), now)
			if w.CwndF() > ss+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayedAcksHalveSlowStartGrowth(t *testing.T) {
	w := mustWindow(t, Config{InitCwnd: 10, Algorithm: NewReno(), DelayedAcks: true})
	// Full-window round under delayed ACKs: growth = acked/2.
	w.Ack(10, 0)
	if w.CwndF() != 15 {
		t.Errorf("cwnd = %v, want 15 (1.5x per round)", w.CwndF())
	}
	w.Ack(15, 0)
	if w.CwndF() != 22.5 {
		t.Errorf("cwnd = %v, want 22.5", w.CwndF())
	}
}

func TestDelayedAcksSlowerThanImmediate(t *testing.T) {
	deliver := func(delayed bool) int {
		w := mustWindow(t, Config{InitCwnd: 10, DelayedAcks: delayed})
		remaining, rounds := 200, 0
		now := time.Duration(0)
		for remaining > 0 {
			send := w.Cwnd()
			if send > remaining {
				send = remaining
			}
			remaining -= send
			now += 100 * time.Millisecond
			w.Ack(send, now)
			rounds++
		}
		return rounds
	}
	if fast, slow := deliver(false), deliver(true); slow <= fast {
		t.Errorf("delayed-ack rounds %d <= immediate %d", slow, fast)
	}
}
