// Package kernel simulates the two Linux kernel surfaces Riptide touches:
//
//   - the connection table, which `ss -i` exposes (per-connection cwnd, RTT,
//     bytes acked), and
//   - the routing table, which `ip route ... initcwnd N` programs
//     (longest-prefix-match routes carrying an initial-congestion-window
//     attribute).
//
// Each simulated machine owns one Host. New connections ask the Host for
// their initial window, which resolves through the route table exactly like
// Linux: the most specific matching route wins; routes without an explicit
// initcwnd fall back to the kernel default of 10 segments.
package kernel

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultInitCwnd is the kernel's default initial congestion window when no
// route overrides it (RFC 6928; Linux >= 2.6.39).
const DefaultInitCwnd = 10

// Route is one entry in a Host's routing table.
type Route struct {
	// Prefix is the destination this route matches.
	Prefix netip.Prefix
	// InitCwnd is the initial congestion window in segments; 0 means the
	// route does not override the kernel default.
	InitCwnd int
	// Proto labels who installed the route ("kernel", "static"); Riptide
	// installs "static" routes like the paper's `ip route ... proto
	// static` invocation.
	Proto string
}

// ConnSnapshot is what `ss -i` would report for one established connection.
type ConnSnapshot struct {
	ID         uint64
	Src, Dst   netip.Addr
	SrcPort    uint16
	DstPort    uint16
	Cwnd       int
	RTT        time.Duration
	BytesAcked int64
	// Retrans is the cumulative count of retransmitted segments, matching
	// the total in ss's `retrans:<inflight>/<total>`.
	Retrans int64
	// Lost is the number of segments currently marked lost (ss `lost:N`).
	Lost int64
	// SegsOut is the cumulative count of segments sent, including
	// retransmissions (ss `segs_out:N`).
	SegsOut int64
	// LossEvents is the cumulative count of loss episodes
	// (fast-retransmit events plus timeouts); sim-only telemetry with no
	// direct ss equivalent.
	LossEvents uint64
	// Opened is the simulated time the connection was established.
	Opened time.Duration
}

// Snapshotter supplies the current state of a live connection. internal/netsim
// connections implement this; the Host never reaches into protocol state.
type Snapshotter interface {
	Snapshot() ConnSnapshot
}

// Host simulates one machine's kernel networking state. Host is safe for
// concurrent use; the simulator is single-threaded but the Riptide agent's
// Linux backend shares the same interfaces from multiple goroutines.
type Host struct {
	addr netip.Addr

	mu        sync.Mutex
	routes    map[netip.Prefix]Route
	conns     map[uint64]Snapshotter
	nextConn  uint64
	defaultIW int
}

// NewHost creates a Host with the given address and the Linux-default
// initial window.
func NewHost(addr netip.Addr) (*Host, error) {
	if !addr.IsValid() {
		return nil, fmt.Errorf("kernel: invalid host address")
	}
	return &Host{
		addr:      addr,
		routes:    make(map[netip.Prefix]Route),
		conns:     make(map[uint64]Snapshotter),
		defaultIW: DefaultInitCwnd,
	}, nil
}

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// SetDefaultInitCwnd overrides the kernel default initial window (sysctl
// analogue). Values < 1 are rejected.
func (h *Host) SetDefaultInitCwnd(iw int) error {
	if iw < 1 {
		return fmt.Errorf("kernel: default initcwnd %d must be >= 1", iw)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.defaultIW = iw
	return nil
}

// AddRoute installs or replaces a route, like `ip route replace`.
func (h *Host) AddRoute(r Route) error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("kernel: invalid route prefix")
	}
	if r.InitCwnd < 0 {
		return fmt.Errorf("kernel: route initcwnd %d must be >= 0", r.InitCwnd)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.routes[r.Prefix.Masked()] = Route{
		Prefix:   r.Prefix.Masked(),
		InitCwnd: r.InitCwnd,
		Proto:    r.Proto,
	}
	return nil
}

// DelRoute removes the route for prefix, like `ip route del`. It reports
// whether a route existed.
func (h *Host) DelRoute(prefix netip.Prefix) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := prefix.Masked()
	_, ok := h.routes[key]
	delete(h.routes, key)
	return ok
}

// RouteUpdate is one element of a batched routing-table edit: install Route
// (Delete false) or remove Route.Prefix (Delete true).
type RouteUpdate struct {
	Route  Route
	Delete bool
}

// ApplyRoutes applies a whole batch of route edits under a single lock
// acquisition — the simulated analogue of `ip -batch`. It returns nil when
// every update applied, otherwise a slice with one slot per update (nil
// slots mark successes). Deleting an absent prefix is a no-op, matching
// DelRoute's tolerance; invalid updates fail individually without aborting
// the rest of the batch.
func (h *Host) ApplyRoutes(updates []RouteUpdate) []error {
	var errs []error
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, u := range updates {
		var err error
		switch {
		case !u.Route.Prefix.IsValid():
			err = fmt.Errorf("kernel: invalid route prefix")
		case u.Delete:
			delete(h.routes, u.Route.Prefix.Masked())
		case u.Route.InitCwnd < 0:
			err = fmt.Errorf("kernel: route initcwnd %d must be >= 0", u.Route.InitCwnd)
		default:
			key := u.Route.Prefix.Masked()
			h.routes[key] = Route{Prefix: key, InitCwnd: u.Route.InitCwnd, Proto: u.Route.Proto}
		}
		if err != nil {
			if errs == nil {
				errs = make([]error, len(updates))
			}
			errs[i] = err
		}
	}
	return errs
}

// Routes returns a copy of the routing table, most-specific first.
func (h *Host) Routes() []Route {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Route, 0, len(h.routes))
	for _, r := range h.routes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Bits() != out[j].Prefix.Bits() {
			return out[i].Prefix.Bits() > out[j].Prefix.Bits()
		}
		return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
	})
	return out
}

// RouteCount reports the number of installed routes.
func (h *Host) RouteCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.routes)
}

// Lookup returns the most specific route matching dst, if any.
func (h *Host) Lookup(dst netip.Addr) (Route, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	best := Route{}
	found := false
	for _, r := range h.routes {
		if !r.Prefix.Contains(dst) {
			continue
		}
		if !found || r.Prefix.Bits() > best.Prefix.Bits() {
			best = r
			found = true
		}
	}
	return best, found
}

// InitCwndFor resolves the initial congestion window a new connection to dst
// will start with: the longest-prefix-match route's initcwnd if it sets one,
// otherwise the kernel default.
func (h *Host) InitCwndFor(dst netip.Addr) int {
	r, ok := h.Lookup(dst)
	h.mu.Lock()
	def := h.defaultIW
	h.mu.Unlock()
	if !ok || r.InitCwnd == 0 {
		return def
	}
	return r.InitCwnd
}

// Register adds a live connection to the host's connection table and
// returns its kernel-assigned id. The caller must Unregister when the
// connection closes.
func (h *Host) Register(s Snapshotter) (uint64, error) {
	if s == nil {
		return 0, fmt.Errorf("kernel: nil snapshotter")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextConn++
	id := h.nextConn
	h.conns[id] = s
	return id, nil
}

// Unregister removes a connection from the table. It reports whether the id
// was present.
func (h *Host) Unregister(id uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.conns[id]
	delete(h.conns, id)
	return ok
}

// connRef pairs a connection id with its snapshotter while the host lock is
// released for the Snapshot calls.
type connRef struct {
	id uint64
	s  Snapshotter
}

// Connections snapshots every established connection, like `ss -tin`.
// Results are sorted by id for determinism.
func (h *Host) Connections() []ConnSnapshot {
	return h.AppendConnections(nil)
}

// AppendConnections is Connections into a caller-provided buffer: snapshots
// are appended to buf and the grown slice returned, so a sampling loop that
// reuses its buffer allocates only the transient id/snapshotter references.
// Snapshot calls happen outside the host lock, preserving the package's
// lock discipline (connection state locks never nest inside the host's).
func (h *Host) AppendConnections(buf []ConnSnapshot) []ConnSnapshot {
	h.mu.Lock()
	refs := make([]connRef, 0, len(h.conns))
	for id, s := range h.conns {
		refs = append(refs, connRef{id: id, s: s})
	}
	h.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })

	for _, ref := range refs {
		snap := ref.s.Snapshot()
		snap.ID = ref.id
		buf = append(buf, snap)
	}
	return buf
}

// ConnCount reports the number of established connections.
func (h *Host) ConnCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// FormatRoutes renders routes in iproute2's `ip route show` syntax, so the
// simulated kernel's state can be inspected with the same tooling (and
// parsers) as a real host's.
func FormatRoutes(routes []Route) string {
	var b strings.Builder
	for _, r := range routes {
		b.WriteString(r.Prefix.String())
		if r.Proto != "" {
			b.WriteString(" proto ")
			b.WriteString(r.Proto)
		}
		if r.InitCwnd > 0 {
			b.WriteString(" initcwnd ")
			b.WriteString(strconv.Itoa(r.InitCwnd))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
