package kernel

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func prefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

type fakeConn struct{ snap ConnSnapshot }

func (f *fakeConn) Snapshot() ConnSnapshot { return f.snap }

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(netip.Addr{}); err == nil {
		t.Error("invalid address accepted")
	}
}

func TestDefaultInitCwnd(t *testing.T) {
	h := newHost(t)
	if got := h.InitCwndFor(addr(t, "10.0.0.2")); got != DefaultInitCwnd {
		t.Errorf("InitCwndFor = %d, want default %d", got, DefaultInitCwnd)
	}
}

func TestSetDefaultInitCwnd(t *testing.T) {
	h := newHost(t)
	if err := h.SetDefaultInitCwnd(0); err == nil {
		t.Error("zero default accepted")
	}
	if err := h.SetDefaultInitCwnd(16); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "10.0.0.2")); got != 16 {
		t.Errorf("InitCwndFor = %d, want 16", got)
	}
}

func TestAddRouteValidation(t *testing.T) {
	h := newHost(t)
	if err := h.AddRoute(Route{}); err == nil {
		t.Error("invalid prefix accepted")
	}
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.0.0.0/24"), InitCwnd: -1}); err == nil {
		t.Error("negative initcwnd accepted")
	}
}

func TestHostRouteOverridesInitCwnd(t *testing.T) {
	h := newHost(t)
	// Mirrors the paper's example: ip route add 10.0.0.127 ... initcwnd 80.
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.0.0.127/32"), InitCwnd: 80, Proto: "static"}); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "10.0.0.127")); got != 80 {
		t.Errorf("InitCwndFor(routed host) = %d, want 80", got)
	}
	if got := h.InitCwndFor(addr(t, "10.0.0.128")); got != DefaultInitCwnd {
		t.Errorf("InitCwndFor(other host) = %d, want default", got)
	}
}

func TestLongestPrefixMatchWins(t *testing.T) {
	h := newHost(t)
	for _, r := range []Route{
		{Prefix: prefix(t, "10.0.0.0/8"), InitCwnd: 20},
		{Prefix: prefix(t, "10.1.0.0/16"), InitCwnd: 40},
		{Prefix: prefix(t, "10.1.2.0/24"), InitCwnd: 60},
		{Prefix: prefix(t, "10.1.2.3/32"), InitCwnd: 80},
	} {
		if err := h.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		dst  string
		want int
	}{
		{"10.1.2.3", 80},
		{"10.1.2.4", 60},
		{"10.1.3.1", 40},
		{"10.9.9.9", 20},
		{"192.168.1.1", DefaultInitCwnd},
	}
	for _, tt := range tests {
		if got := h.InitCwndFor(addr(t, tt.dst)); got != tt.want {
			t.Errorf("InitCwndFor(%s) = %d, want %d", tt.dst, got, tt.want)
		}
	}
}

func TestRouteWithZeroInitCwndFallsBack(t *testing.T) {
	h := newHost(t)
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.0.0.0/24")}); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "10.0.0.5")); got != DefaultInitCwnd {
		t.Errorf("route without initcwnd gave %d, want kernel default", got)
	}
}

func TestDefaultRouteZeroPrefix(t *testing.T) {
	h := newHost(t)
	def := prefix(t, "0.0.0.0/0")
	if err := h.AddRoute(Route{Prefix: def, InitCwnd: 24}); err != nil {
		t.Fatal(err)
	}
	// The /0 matches every destination, like `ip route replace default`.
	for _, dst := range []string{"10.0.0.9", "192.0.2.1", "255.255.255.255"} {
		if got := h.InitCwndFor(addr(t, dst)); got != 24 {
			t.Errorf("InitCwndFor(%s) = %d, want 24 from the default route", dst, got)
		}
	}

	// Any longer prefix beats the /0.
	if err := h.AddRoute(Route{Prefix: prefix(t, "192.0.2.0/24"), InitCwnd: 64}); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "192.0.2.1")); got != 64 {
		t.Errorf("InitCwndFor(192.0.2.1) = %d, want 64 (the /24, not the /0)", got)
	}
	if got := h.InitCwndFor(addr(t, "198.51.100.1")); got != 24 {
		t.Errorf("InitCwndFor(198.51.100.1) = %d, want 24 (back to the /0)", got)
	}

	// Withdrawing the /0 restores the kernel default everywhere else.
	if !h.DelRoute(def) {
		t.Fatal("DelRoute(/0) found nothing")
	}
	if got := h.InitCwndFor(addr(t, "198.51.100.1")); got != DefaultInitCwnd {
		t.Errorf("InitCwndFor after /0 removal = %d, want kernel default %d", got, DefaultInitCwnd)
	}
	if r, ok := h.Lookup(addr(t, "192.0.2.1")); !ok || r.Prefix != prefix(t, "192.0.2.0/24") {
		t.Errorf("Lookup(192.0.2.1) = %v,%v, want the surviving /24", r, ok)
	}
}

// TestZeroInitCwndShadowsBroaderOverride pins the Linux metric semantics:
// only the longest-prefix-match route's metrics apply. A /32 without an
// initcwnd shadows a /8 that sets one — the connection starts at the kernel
// default, not at the broader route's window.
func TestZeroInitCwndShadowsBroaderOverride(t *testing.T) {
	h := newHost(t)
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.0.0.0/8"), InitCwnd: 50}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.1.2.3/32")}); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.3")); got != DefaultInitCwnd {
		t.Errorf("InitCwndFor(10.1.2.3) = %d, want kernel default %d (the /32 shadows the /8)",
			got, DefaultInitCwnd)
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.4")); got != 50 {
		t.Errorf("InitCwndFor(10.1.2.4) = %d, want 50 from the /8", got)
	}
	if r, ok := h.Lookup(addr(t, "10.1.2.3")); !ok || r.Prefix.Bits() != 32 {
		t.Errorf("Lookup(10.1.2.3) = %v,%v, want the /32", r, ok)
	}
}

func TestOverlappingSiblingPrefixes(t *testing.T) {
	h := newHost(t)
	for _, r := range []Route{
		{Prefix: prefix(t, "10.1.2.0/24"), InitCwnd: 30},
		{Prefix: prefix(t, "10.1.2.0/25"), InitCwnd: 60},
		{Prefix: prefix(t, "10.1.2.128/25"), InitCwnd: 90},
	} {
		if err := h.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.5")); got != 60 {
		t.Errorf("lower /25 half: got %d, want 60", got)
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.200")); got != 90 {
		t.Errorf("upper /25 half: got %d, want 90", got)
	}
	// Removing one /25 uncovers the /24 beneath it; the sibling half is
	// untouched.
	if !h.DelRoute(prefix(t, "10.1.2.0/25")) {
		t.Fatal("DelRoute(/25) found nothing")
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.5")); got != 30 {
		t.Errorf("after /25 removal: got %d, want 30 from the /24", got)
	}
	if got := h.InitCwndFor(addr(t, "10.1.2.200")); got != 90 {
		t.Errorf("sibling /25 after removal: got %d, want 90", got)
	}
}

func TestAddRouteReplaces(t *testing.T) {
	h := newHost(t)
	p := prefix(t, "10.2.0.0/16")
	_ = h.AddRoute(Route{Prefix: p, InitCwnd: 30})
	_ = h.AddRoute(Route{Prefix: p, InitCwnd: 90})
	if h.RouteCount() != 1 {
		t.Errorf("RouteCount = %d, want 1 (replace, not duplicate)", h.RouteCount())
	}
	if got := h.InitCwndFor(addr(t, "10.2.1.1")); got != 90 {
		t.Errorf("InitCwndFor = %d, want 90", got)
	}
}

func TestAddRouteMasksPrefix(t *testing.T) {
	h := newHost(t)
	// Unmasked prefix (host bits set) must normalize like iproute2 does.
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.3.7.9/16"), InitCwnd: 33}); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(addr(t, "10.3.200.200")); got != 33 {
		t.Errorf("InitCwndFor = %d, want 33 via masked /16", got)
	}
	if !h.DelRoute(prefix(t, "10.3.0.0/16")) {
		t.Error("DelRoute by masked form failed")
	}
}

func TestDelRoute(t *testing.T) {
	h := newHost(t)
	p := prefix(t, "10.0.0.42/32")
	_ = h.AddRoute(Route{Prefix: p, InitCwnd: 77})
	if !h.DelRoute(p) {
		t.Error("DelRoute = false for existing route")
	}
	if h.DelRoute(p) {
		t.Error("DelRoute = true for missing route")
	}
	if got := h.InitCwndFor(addr(t, "10.0.0.42")); got != DefaultInitCwnd {
		t.Errorf("InitCwndFor after delete = %d, want default (paper: TTL expiry restores IW10)", got)
	}
}

func TestRoutesSortedMostSpecificFirst(t *testing.T) {
	h := newHost(t)
	_ = h.AddRoute(Route{Prefix: prefix(t, "10.0.0.0/8"), InitCwnd: 1})
	_ = h.AddRoute(Route{Prefix: prefix(t, "10.1.1.1/32"), InitCwnd: 2})
	_ = h.AddRoute(Route{Prefix: prefix(t, "10.1.0.0/16"), InitCwnd: 3})
	rs := h.Routes()
	if len(rs) != 3 {
		t.Fatalf("Routes len = %d", len(rs))
	}
	if rs[0].Prefix.Bits() != 32 || rs[1].Prefix.Bits() != 16 || rs[2].Prefix.Bits() != 8 {
		t.Errorf("Routes not sorted by specificity: %v", rs)
	}
}

func TestRegisterUnregister(t *testing.T) {
	h := newHost(t)
	if _, err := h.Register(nil); err == nil {
		t.Error("nil snapshotter accepted")
	}
	c := &fakeConn{snap: ConnSnapshot{Cwnd: 42, Dst: addr(t, "10.0.0.9"), RTT: 120 * time.Millisecond}}
	id, err := h.Register(c)
	if err != nil {
		t.Fatal(err)
	}
	if h.ConnCount() != 1 {
		t.Errorf("ConnCount = %d, want 1", h.ConnCount())
	}
	snaps := h.Connections()
	if len(snaps) != 1 || snaps[0].Cwnd != 42 || snaps[0].ID != id {
		t.Errorf("Connections = %+v", snaps)
	}
	if !h.Unregister(id) {
		t.Error("Unregister = false")
	}
	if h.Unregister(id) {
		t.Error("double Unregister = true")
	}
	if h.ConnCount() != 0 {
		t.Errorf("ConnCount after unregister = %d", h.ConnCount())
	}
}

func TestConnectionsDeterministicOrder(t *testing.T) {
	h := newHost(t)
	for i := 0; i < 10; i++ {
		if _, err := h.Register(&fakeConn{snap: ConnSnapshot{Cwnd: i}}); err != nil {
			t.Fatal(err)
		}
	}
	snaps := h.Connections()
	for i := 1; i < len(snaps); i++ {
		if snaps[i].ID <= snaps[i-1].ID {
			t.Fatalf("Connections not sorted by id: %v", snaps)
		}
	}
}

// Property: lookup always returns the longest matching prefix among those
// installed.
func TestLookupLongestMatchProperty(t *testing.T) {
	f := func(octet uint8, bitsRaw [4]uint8) bool {
		h, err := NewHost(netip.MustParseAddr("10.0.0.1"))
		if err != nil {
			return false
		}
		dst := netip.AddrFrom4([4]byte{10, 20, 30, octet})
		longest := -1
		for _, br := range bitsRaw {
			bits := int(br) % 33
			p, err := dst.Prefix(bits)
			if err != nil {
				return false
			}
			if err := h.AddRoute(Route{Prefix: p, InitCwnd: bits + 1}); err != nil {
				return false
			}
			if bits > longest {
				longest = bits
			}
		}
		r, ok := h.Lookup(dst)
		return ok && r.Prefix.Bits() == longest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: deleting every installed route restores the default initcwnd for
// any destination.
func TestDeleteRestoresDefaultProperty(t *testing.T) {
	f := func(dstOctets [4]uint8, bitsRaw uint8) bool {
		h, err := NewHost(netip.MustParseAddr("10.0.0.1"))
		if err != nil {
			return false
		}
		dst := netip.AddrFrom4([4]byte(dstOctets))
		p, err := dst.Prefix(int(bitsRaw) % 33)
		if err != nil {
			return false
		}
		if err := h.AddRoute(Route{Prefix: p, InitCwnd: 55}); err != nil {
			return false
		}
		if h.InitCwndFor(dst) != 55 {
			return false
		}
		h.DelRoute(p)
		return h.InitCwndFor(dst) == DefaultInitCwnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyRoutesAllSuccessReturnsNil(t *testing.T) {
	h := newHost(t)
	updates := []RouteUpdate{
		{Route: Route{Prefix: prefix(t, "10.0.0.0/24"), InitCwnd: 40}},
		{Route: Route{Prefix: prefix(t, "10.0.1.0/24"), InitCwnd: 20}},
	}
	if errs := h.ApplyRoutes(updates); errs != nil {
		t.Fatalf("ApplyRoutes = %v, want nil", errs)
	}
	if h.RouteCount() != 2 {
		t.Errorf("RouteCount = %d, want 2", h.RouteCount())
	}
	if got := h.InitCwndFor(addr(t, "10.0.1.9")); got != 20 {
		t.Errorf("InitCwndFor = %d, want 20", got)
	}
}

func TestApplyRoutesPerSlotErrors(t *testing.T) {
	h := newHost(t)
	if err := h.AddRoute(Route{Prefix: prefix(t, "10.0.9.0/24"), InitCwnd: 30}); err != nil {
		t.Fatal(err)
	}
	updates := []RouteUpdate{
		{Route: Route{Prefix: netip.Prefix{}, InitCwnd: 40}},           // invalid prefix
		{Route: Route{Prefix: prefix(t, "10.0.0.0/24"), InitCwnd: -1}}, // negative initcwnd
		{Route: Route{Prefix: prefix(t, "10.0.5.0/24")}, Delete: true}, // delete absent: tolerated
		{Route: Route{Prefix: prefix(t, "10.0.9.0/24")}, Delete: true}, // delete existing
		{Route: Route{Prefix: prefix(t, "10.0.1.5/24"), InitCwnd: 28}}, // install, masked
	}
	errs := h.ApplyRoutes(updates)
	if errs == nil {
		t.Fatal("invalid updates accepted")
	}
	if len(errs) != len(updates) {
		t.Fatalf("len(errs) = %d, want one slot per update", len(errs))
	}
	if errs[0] == nil || errs[1] == nil {
		t.Errorf("invalid updates not rejected: %v", errs)
	}
	for i := 2; i < len(updates); i++ {
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil (one bad update must not abort the batch)", i, errs[i])
		}
	}
	if _, ok := h.Lookup(addr(t, "10.0.9.1")); ok {
		t.Error("batched delete did not remove the route")
	}
	r, ok := h.Lookup(addr(t, "10.0.1.200"))
	if !ok || r.Prefix != prefix(t, "10.0.1.0/24") || r.InitCwnd != 28 {
		t.Errorf("batched install = %+v ok=%v, want masked 10.0.1.0/24 iw=28", r, ok)
	}
}

func TestAppendConnectionsReusesCallerBuffer(t *testing.T) {
	h := newHost(t)
	for i := 0; i < 3; i++ {
		snap := ConnSnapshot{Dst: addr(t, "10.0.0.9"), Cwnd: 10 + i}
		if _, err := h.Register(&fakeConn{snap: snap}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]ConnSnapshot, 0, 8)
	out := h.AppendConnections(buf)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	if &out[0] != &buf[0:1][0] {
		t.Error("AppendConnections reallocated despite sufficient capacity")
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].ID >= out[i].ID {
			t.Errorf("snapshots not sorted by id: %v >= %v", out[i-1].ID, out[i].ID)
		}
	}
	// Appending after existing elements preserves them.
	sentinel := ConnSnapshot{ID: 999}
	out2 := h.AppendConnections([]ConnSnapshot{sentinel})
	if len(out2) != 4 || out2[0].ID != 999 {
		t.Errorf("append after sentinel = %v", out2)
	}
}

// TestAggregationShadowingTransitions pins the LPM semantics the agent's
// prefix aggregation relies on: a covering route and a child route coexist
// with the child winning; withdrawing the child mid-stream falls traffic
// back to the covering route with no gap; and withdrawing the covering
// route leaves remaining children serving. Every aggregate transition
// (form: install parent then clear children; split: reinstall child;
// dissolve: reinstall children then clear parent) is a sequence of these
// steps, so none of them can ever route a destination to the kernel
// default.
func TestAggregationShadowingTransitions(t *testing.T) {
	h := newHost(t)
	child := Route{Prefix: prefix(t, "10.1.2.3/32"), InitCwnd: 48}
	parent := Route{Prefix: prefix(t, "10.1.2.0/24"), InitCwnd: 32}
	dst := addr(t, "10.1.2.3")
	sibling := addr(t, "10.1.2.9")

	// Formation order: covering route first, then the child withdrawal.
	if err := h.AddRoute(child); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoute(parent); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(dst); got != 48 {
		t.Errorf("child shadowing parent: InitCwndFor = %d, want 48", got)
	}
	if got := h.InitCwndFor(sibling); got != 32 {
		t.Errorf("sibling under parent: InitCwndFor = %d, want 32", got)
	}
	if !h.DelRoute(child.Prefix) {
		t.Fatal("child withdrawal failed")
	}
	if got := h.InitCwndFor(dst); got != 32 {
		t.Errorf("after absorb: InitCwndFor = %d, want 32 (covering route)", got)
	}

	// Split: the specific route returns and instantly wins LPM again.
	if err := h.AddRoute(child); err != nil {
		t.Fatal(err)
	}
	if got := h.InitCwndFor(dst); got != 48 {
		t.Errorf("after split: InitCwndFor = %d, want 48", got)
	}

	// Dissolution order: children are back first, then the covering route
	// goes; the child keeps serving and only the sibling returns to the
	// kernel default.
	if !h.DelRoute(parent.Prefix) {
		t.Fatal("parent withdrawal failed")
	}
	if got := h.InitCwndFor(dst); got != 48 {
		t.Errorf("after dissolve: InitCwndFor = %d, want 48", got)
	}
	if got := h.InitCwndFor(sibling); got != DefaultInitCwnd {
		t.Errorf("sibling after dissolve: InitCwndFor = %d, want default %d", got, DefaultInitCwnd)
	}
}
