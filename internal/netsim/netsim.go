// Package netsim is the WAN simulator: hosts with simulated kernels
// (internal/kernel), directed paths with RTT, random loss, and bottleneck
// capacity, and TCP connections whose windows evolve per internal/tcpsim —
// all driven deterministically by an internal/eventsim engine.
//
// A transfer progresses in ACK-clocked rounds: each round the connection
// sends min(cwnd, remaining) segments, the path loses some of them (random
// loss plus congestion-induced loss when the path's aggregate in-flight load
// exceeds its capacity), and one RTT later the window reacts — growth on a
// clean round, multiplicative decrease on loss. Lost segments are
// retransmitted in later rounds.
//
// Crucially for Riptide, a new connection's starting window comes from the
// source host's route table (kernel.Host.InitCwndFor), which is exactly the
// surface the Riptide agent programs.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"riptide/internal/eventsim"
	"riptide/internal/kernel"
	"riptide/internal/tcpsim"
	"riptide/internal/workload"
)

// Common errors.
var (
	ErrUnknownHost = errors.New("netsim: unknown host")
	ErrNoPath      = errors.New("netsim: no path between hosts")
	ErrConnClosed  = errors.New("netsim: connection closed")
)

// PathConfig describes one direction of a WAN path.
type PathConfig struct {
	// RTT is the round-trip time of the path. Must be positive.
	RTT time.Duration
	// LossRate is the random per-segment loss probability in [0, 1).
	LossRate float64
	// CapacitySegments is the number of segments the path sustains per
	// RTT across all flows before congestion loss kicks in. Zero means
	// effectively unconstrained.
	CapacitySegments int
	// CongestionLossFactor scales how aggressively overload converts to
	// loss: extra loss probability = factor * max(0, load/capacity - 1),
	// capped at 0.5. Defaults to 0.25 when zero.
	CongestionLossFactor float64
	// RTTJitter adds per-round delay variation: each round's RTT is
	// RTT * (1 + |N(0, RTTJitter)|), modelling queueing delay that only
	// ever lengthens a round. Zero (the default) keeps rounds exact.
	RTTJitter float64
}

func (pc PathConfig) validate() error {
	if pc.RTT <= 0 {
		return fmt.Errorf("netsim: path RTT %v must be positive", pc.RTT)
	}
	if pc.LossRate < 0 || pc.LossRate >= 1 {
		return fmt.Errorf("netsim: path loss rate %v must be in [0,1)", pc.LossRate)
	}
	if pc.CapacitySegments < 0 {
		return fmt.Errorf("netsim: path capacity %d must be >= 0", pc.CapacitySegments)
	}
	if pc.CongestionLossFactor < 0 {
		return fmt.Errorf("netsim: congestion loss factor %v must be >= 0", pc.CongestionLossFactor)
	}
	if pc.RTTJitter < 0 || pc.RTTJitter > 1 {
		return fmt.Errorf("netsim: RTT jitter %v must be in [0,1]", pc.RTTJitter)
	}
	return nil
}

// roundRTT samples this round's effective RTT, applying queueing jitter.
func (p *path) roundRTT(rng *rand.Rand) time.Duration {
	if p.cfg.RTTJitter == 0 {
		return p.cfg.RTT
	}
	extra := math.Abs(rng.NormFloat64()) * p.cfg.RTTJitter
	return time.Duration(float64(p.cfg.RTT) * (1 + extra))
}

type pathKey struct{ src, dst netip.Addr }

// path is the live state of one directed path.
type path struct {
	cfg  PathConfig
	load int // segments currently inside one RTT window
	// blocked marks the path administratively down (a peer partition):
	// Open fails and in-flight rounds lose every segment.
	blocked bool
}

// extraCongestionLoss returns the additional loss probability the current
// load imposes.
func (p *path) extraCongestionLoss() float64 {
	if p.cfg.CapacitySegments == 0 || p.load <= p.cfg.CapacitySegments {
		return 0
	}
	factor := p.cfg.CongestionLossFactor
	if factor == 0 {
		factor = 0.25
	}
	over := float64(p.load)/float64(p.cfg.CapacitySegments) - 1
	loss := factor * over
	if loss > 0.5 {
		loss = 0.5
	}
	return loss
}

// Config configures a Network.
type Config struct {
	// Engine drives all simulated time. Required.
	Engine *eventsim.Engine
	// Seed makes loss draws reproducible.
	Seed int64
	// MSS is the segment payload size; defaults to workload.DefaultMSS.
	MSS int
	// Algorithm is the congestion control used by every connection;
	// defaults to CUBIC, like the paper's Linux deployment.
	Algorithm tcpsim.Algorithm
	// DisableIdleRestart turns off RFC 2861 congestion-window validation.
	// By default (like Linux's tcp_slow_start_after_idle=1) a connection
	// idle for longer than its RTO restarts from the route's current
	// initial window instead of bursting a stale window.
	DisableIdleRestart bool
}

// Network is the simulated WAN.
type Network struct {
	engine *eventsim.Engine
	rng    *rand.Rand
	mss    int
	alg    tcpsim.Algorithm

	hosts map[netip.Addr]*kernel.Host
	paths map[pathKey]*path
	conns map[*Conn]struct{}

	disableIdleRestart bool

	opened        uint64
	completed     uint64
	retransmitted int64
}

// NewNetwork constructs an empty Network.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Engine == nil {
		return nil, errors.New("netsim: nil engine")
	}
	mss := cfg.MSS
	if mss == 0 {
		mss = workload.DefaultMSS
	}
	if mss < 1 {
		return nil, fmt.Errorf("netsim: MSS %d must be >= 1", mss)
	}
	alg := cfg.Algorithm
	if alg == nil {
		alg = tcpsim.NewCubic()
	}
	return &Network{
		engine:             cfg.Engine,
		rng:                workload.NewRand(cfg.Seed),
		mss:                mss,
		alg:                alg,
		hosts:              make(map[netip.Addr]*kernel.Host),
		paths:              make(map[pathKey]*path),
		conns:              make(map[*Conn]struct{}),
		disableIdleRestart: cfg.DisableIdleRestart,
	}, nil
}

// Engine returns the driving event engine.
func (n *Network) Engine() *eventsim.Engine { return n.engine }

// MSS returns the configured segment size.
func (n *Network) MSS() int { return n.mss }

// AddHost creates a host with the given address.
func (n *Network) AddHost(addr netip.Addr) (*kernel.Host, error) {
	if _, ok := n.hosts[addr]; ok {
		return nil, fmt.Errorf("netsim: host %v already exists", addr)
	}
	h, err := kernel.NewHost(addr)
	if err != nil {
		return nil, err
	}
	n.hosts[addr] = h
	return h, nil
}

// Host returns the host with the given address.
func (n *Network) Host(addr netip.Addr) (*kernel.Host, error) {
	h, ok := n.hosts[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownHost, addr)
	}
	return h, nil
}

// SetPath installs the directed path src -> dst.
func (n *Network) SetPath(src, dst netip.Addr, cfg PathConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if _, ok := n.hosts[src]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownHost, src)
	}
	if _, ok := n.hosts[dst]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownHost, dst)
	}
	n.paths[pathKey{src, dst}] = &path{cfg: cfg}
	return nil
}

// SetBidiPath installs the same path configuration in both directions.
func (n *Network) SetBidiPath(a, b netip.Addr, cfg PathConfig) error {
	if err := n.SetPath(a, b, cfg); err != nil {
		return err
	}
	return n.SetPath(b, a, cfg)
}

// SetPathLoss changes the random loss rate of the live path src -> dst,
// affecting existing connections as well as future ones — a mid-run
// congestion or degradation event.
func (n *Network) SetPathLoss(src, dst netip.Addr, lossRate float64) error {
	if lossRate < 0 || lossRate >= 1 {
		return fmt.Errorf("netsim: loss rate %v must be in [0,1)", lossRate)
	}
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	p.cfg.LossRate = lossRate
	return nil
}

// SetPathCapacity changes the bottleneck capacity (segments per RTT) of the
// live path src -> dst, affecting existing connections as well as future
// ones — a mid-run capacity cut such as a failed link in a LAG or a rerouted
// backbone. Zero means effectively unconstrained.
func (n *Network) SetPathCapacity(src, dst netip.Addr, segments int) error {
	if segments < 0 {
		return fmt.Errorf("netsim: path capacity %d must be >= 0", segments)
	}
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	p.cfg.CapacitySegments = segments
	return nil
}

// SetPathRTT changes the round-trip time of the live path src -> dst,
// affecting existing connections as well as future ones — a route flap that
// moves traffic onto a longer (or shorter) backbone path. Rounds already in
// flight complete at the old RTT; the next round uses the new one.
func (n *Network) SetPathRTT(src, dst netip.Addr, rtt time.Duration) error {
	if rtt <= 0 {
		return fmt.Errorf("netsim: path RTT %v must be positive", rtt)
	}
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	p.cfg.RTT = rtt
	return nil
}

// SetPathBlocked marks the live path src -> dst administratively down (or up
// again) — a peer partition. While blocked, Open fails with ErrNoPath and any
// round sent over the path loses every segment. Existing connections are left
// to the caller (see CloseConnsBetween), matching how a real partition kills
// some flows instantly and leaves others to time out.
func (n *Network) SetPathBlocked(src, dst netip.Addr, blocked bool) error {
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	p.blocked = blocked
	return nil
}

// PathRTT reports the configured RTT from src to dst.
func (n *Network) PathRTT(src, dst netip.Addr) (time.Duration, error) {
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return 0, fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	return p.cfg.RTT, nil
}

// Opened reports how many connections have been opened.
func (n *Network) Opened() uint64 { return n.opened }

// CompletedTransfers reports how many transfers have finished.
func (n *Network) CompletedTransfers() uint64 { return n.completed }

// Retransmitted reports the cumulative number of segments retransmitted
// across every connection since the network was built. Sampling it at phase
// boundaries gives a deterministic per-window retransmit count — the scenario
// engine's loss ledger.
func (n *Network) Retransmitted() int64 { return n.retransmitted }

// TransferResult describes one finished transfer.
type TransferResult struct {
	Bytes   int64
	Elapsed time.Duration
	Rounds  int
	// Retransmits is the number of segments that had to be resent.
	Retransmits int64
	// InitCwnd is the window the connection started with — what Riptide
	// chose (or the kernel default).
	InitCwnd int
}

// transfer is one queued send on a connection.
type transfer struct {
	remaining int64 // segments
	total     int64
	started   time.Duration
	rounds    int
	retrans   int64
	done      func(TransferResult)
}

// Conn is one simulated TCP connection. All methods must be called from
// within the owning engine's event loop (the simulation is single-threaded).
type Conn struct {
	network  *Network
	id       uint64
	src, dst netip.Addr
	srcPort  uint16
	dstPort  uint16
	win      *tcpsim.Window
	path     *path
	opened   time.Duration

	queue      []*transfer
	sending    bool
	closed     bool
	bytesAcked int64
	// Cumulative loss telemetry surfaced through Snapshot, mirroring what
	// `ss -tin` exposes on Linux (retrans totals, segs_out) so the Riptide
	// governor sees the same signal in simulation as in production.
	segsOut  int64 // segments sent, incl. retransmissions
	retrans  int64 // segments retransmitted (lost and resent)
	lastLost int64 // segments lost in the most recent round (ss lost:)
	// lastActive is the last simulated time the connection sent or
	// received; it drives RFC 2861 idle-restart.
	lastActive time.Duration
}

var _ kernel.Snapshotter = (*Conn)(nil)

// Open establishes a connection from src to dst. The initial congestion
// window is resolved through the source host's route table — the Riptide
// integration point.
func (n *Network) Open(src, dst netip.Addr) (*Conn, error) {
	srcHost, ok := n.hosts[src]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownHost, src)
	}
	if _, ok := n.hosts[dst]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownHost, dst)
	}
	p, ok := n.paths[pathKey{src, dst}]
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPath, src, dst)
	}
	if p.blocked {
		return nil, fmt.Errorf("%w: %v -> %v (partitioned)", ErrNoPath, src, dst)
	}
	iw := srcHost.InitCwndFor(dst)
	win, err := tcpsim.NewWindow(tcpsim.Config{InitCwnd: iw, Algorithm: n.alg})
	if err != nil {
		return nil, err
	}
	c := &Conn{
		network:    n,
		src:        src,
		dst:        dst,
		srcPort:    uint16(40000 + n.rng.Intn(20000)),
		dstPort:    443,
		win:        win,
		path:       p,
		opened:     n.engine.Now(),
		lastActive: n.engine.Now(),
	}
	id, err := srcHost.Register(c)
	if err != nil {
		return nil, err
	}
	c.id = id
	n.opened++
	n.conns[c] = struct{}{}
	return c, nil
}

// OpenConns reports the number of live connections in the network.
func (n *Network) OpenConns() int { return len(n.conns) }

// CloseConnsInvolving force-closes every connection whose source or
// destination is addr — the blast radius of a host reboot (paper
// Section II-A: a reboot loses the local state and the remote ends'
// connections to that node alike). It returns how many connections closed.
func (n *Network) CloseConnsInvolving(addr netip.Addr) int {
	closed := 0
	for c := range n.conns {
		if c.src == addr || c.dst == addr {
			c.Close()
			closed++
		}
	}
	return closed
}

// CloseConnsBetween force-closes every connection between a and b, in either
// direction — the flows a peer partition kills outright. It returns how many
// connections closed.
func (n *Network) CloseConnsBetween(a, b netip.Addr) int {
	closed := 0
	for c := range n.conns {
		if (c.src == a && c.dst == b) || (c.src == b && c.dst == a) {
			c.Close()
			closed++
		}
	}
	return closed
}

// Snapshot implements kernel.Snapshotter: the `ss -i` view of this
// connection.
func (c *Conn) Snapshot() kernel.ConnSnapshot {
	return kernel.ConnSnapshot{
		ID:         c.id,
		Src:        c.src,
		Dst:        c.dst,
		SrcPort:    c.srcPort,
		DstPort:    c.dstPort,
		Cwnd:       c.win.Cwnd(),
		RTT:        c.path.cfg.RTT,
		BytesAcked: c.bytesAcked,
		Retrans:    c.retrans,
		Lost:       c.lastLost,
		SegsOut:    c.segsOut,
		LossEvents: c.win.LossEvents() + c.win.TimeoutEvents(),
		Opened:     c.opened,
	}
}

// Window exposes the connection's congestion window (read-mostly; tests and
// experiments use it).
func (c *Conn) Window() *tcpsim.Window { return c.win }

// Src returns the local address.
func (c *Conn) Src() netip.Addr { return c.src }

// Dst returns the remote address.
func (c *Conn) Dst() netip.Addr { return c.dst }

// Idle reports whether the connection has no transfer in progress or queued.
func (c *Conn) Idle() bool { return !c.sending && len(c.queue) == 0 }

// Closed reports whether Close has been called.
func (c *Conn) Closed() bool { return c.closed }

// Close tears the connection down and removes it from the kernel table.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.network.conns, c)
	if h, ok := c.network.hosts[c.src]; ok {
		h.Unregister(c.id)
	}
}

// Transfer queues bytes to send. done (optional) fires inside the engine
// when the transfer completes. Transfers on one connection are serialized in
// FIFO order. A non-positive size completes immediately in zero rounds.
func (c *Conn) Transfer(bytes int64, done func(TransferResult)) error {
	if c.closed {
		return ErrConnClosed
	}
	segs := (bytes + int64(c.network.mss) - 1) / int64(c.network.mss)
	if bytes <= 0 {
		if done != nil {
			done(TransferResult{InitCwnd: c.win.InitCwnd()})
		}
		return nil
	}
	t := &transfer{
		remaining: segs,
		total:     segs,
		started:   c.network.engine.Now(),
		done:      done,
	}
	c.queue = append(c.queue, t)
	if !c.sending {
		c.startNext()
	}
	return nil
}

// startNext begins the round loop for the transfer at the head of the queue.
func (c *Conn) startNext() {
	if len(c.queue) == 0 || c.closed {
		c.sending = false
		return
	}
	c.sending = true
	t := c.queue[0]
	t.started = c.network.engine.Now()
	c.maybeIdleRestart()
	c.round(t)
}

// maybeIdleRestart applies RFC 2861 congestion-window validation: when the
// connection has been idle past its RTO estimate, the window restarts from
// the route's *current* initial window — which is how Riptide's learned
// values keep benefitting reused connections, exactly as on Linux.
func (c *Conn) maybeIdleRestart() {
	if c.network.disableIdleRestart {
		return
	}
	now := c.network.engine.Now()
	rto := 2 * c.path.cfg.RTT
	if rto < time.Second {
		rto = time.Second // Linux floors the RTO near 1s for WAN idle checks
	}
	if now-c.lastActive <= rto {
		return
	}
	restart := c.win.InitCwnd()
	if h, ok := c.network.hosts[c.src]; ok {
		restart = h.InitCwndFor(c.dst)
	}
	c.win.RestartAfterIdle(restart)
}

// round sends one window's worth of segments and schedules the ACK handling
// one RTT later.
func (c *Conn) round(t *transfer) {
	if c.closed {
		c.sending = false
		return
	}
	send := int64(c.win.Cwnd())
	if send > t.remaining {
		send = t.remaining
	}
	// Account the burst against the path's per-RTT load window.
	p := c.path
	p.load += int(send)
	c.segsOut += send
	lossProb := p.cfg.LossRate + p.extraCongestionLoss()
	lost := int64(0)
	if p.blocked {
		lost = send // a partitioned path delivers nothing
	} else if lossProb > 0 {
		for i := int64(0); i < send; i++ {
			if c.network.rng.Float64() < lossProb {
				lost++
			}
		}
	}
	rtt := p.roundRTT(c.network.rng)
	c.network.engine.MustSchedule(rtt, func() {
		p.load -= int(send)
		if c.closed {
			c.sending = false
			return
		}
		now := c.network.engine.Now()
		c.lastActive = now
		delivered := send - lost
		t.remaining -= delivered
		t.rounds++
		t.retrans += lost
		c.retrans += lost
		c.network.retransmitted += lost
		c.lastLost = lost
		c.bytesAcked += delivered * int64(c.network.mss)
		if lost > 0 {
			c.win.Loss(now)
		} else {
			c.win.Ack(int(delivered), now)
		}
		if t.remaining > 0 {
			c.round(t)
			return
		}
		// Transfer complete.
		c.queue = c.queue[1:]
		c.network.completed++
		if t.done != nil {
			t.done(TransferResult{
				Bytes:       t.total * int64(c.network.mss),
				Elapsed:     now - t.started,
				Rounds:      t.rounds,
				Retransmits: t.retrans,
				InitCwnd:    c.win.InitCwnd(),
			})
		}
		c.startNext()
	})
}
