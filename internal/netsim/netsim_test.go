package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"riptide/internal/eventsim"
	"riptide/internal/kernel"
	"riptide/internal/tcpsim"
)

var (
	hostA = netip.MustParseAddr("10.0.0.1")
	hostB = netip.MustParseAddr("10.0.0.2")
)

func newNet(t *testing.T, seed int64) *Network {
	t.Helper()
	n, err := NewNetwork(Config{Engine: eventsim.NewEngine(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// twoHosts builds a two-host network with a lossless 100ms path.
func twoHosts(t *testing.T, cfg PathConfig) *Network {
	t.Helper()
	n := newNet(t, 1)
	if _, err := n.AddHost(hostA); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost(hostB); err != nil {
		t.Fatal(err)
	}
	if cfg.RTT == 0 {
		cfg.RTT = 100 * time.Millisecond
	}
	if err := n.SetBidiPath(hostA, hostB, cfg); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewNetwork(Config{Engine: eventsim.NewEngine(), MSS: -1}); err == nil {
		t.Error("negative MSS accepted")
	}
}

func TestAddHostDuplicate(t *testing.T) {
	n := newNet(t, 1)
	if _, err := n.AddHost(hostA); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost(hostA); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestSetPathValidation(t *testing.T) {
	n := newNet(t, 1)
	_, _ = n.AddHost(hostA)
	_, _ = n.AddHost(hostB)
	bad := []PathConfig{
		{RTT: 0},
		{RTT: -time.Second},
		{RTT: time.Second, LossRate: 1},
		{RTT: time.Second, LossRate: -0.1},
		{RTT: time.Second, CapacitySegments: -1},
		{RTT: time.Second, CongestionLossFactor: -1},
	}
	for i, cfg := range bad {
		if err := n.SetPath(hostA, hostB, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := n.SetPath(netip.MustParseAddr("1.1.1.1"), hostB, PathConfig{RTT: time.Second}); err == nil {
		t.Error("unknown src accepted")
	}
	if err := n.SetPath(hostA, netip.MustParseAddr("1.1.1.1"), PathConfig{RTT: time.Second}); err == nil {
		t.Error("unknown dst accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	n := newNet(t, 1)
	_, _ = n.AddHost(hostA)
	_, _ = n.AddHost(hostB)
	if _, err := n.Open(hostA, hostB); err == nil {
		t.Error("open without path accepted")
	}
	if _, err := n.Open(netip.MustParseAddr("9.9.9.9"), hostB); err == nil {
		t.Error("open from unknown host accepted")
	}
}

func TestOpenUsesKernelDefaultIW(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	c, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Window().InitCwnd() != kernel.DefaultInitCwnd {
		t.Errorf("initcwnd = %d, want kernel default", c.Window().InitCwnd())
	}
}

func TestOpenHonoursRiptideRoute(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	h, err := n.Host(hostA)
	if err != nil {
		t.Fatal(err)
	}
	// What the Riptide agent does: install a /32 with learned initcwnd.
	p := netip.PrefixFrom(hostB, 32)
	if err := h.AddRoute(kernel.Route{Prefix: p, InitCwnd: 80, Proto: "static"}); err != nil {
		t.Fatal(err)
	}
	c, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Window().InitCwnd() != 80 {
		t.Errorf("initcwnd = %d, want 80 from route", c.Window().InitCwnd())
	}
}

func TestTransferLossless(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	var res TransferResult
	gotDone := false
	// 100KB = 71 segments at 1448B; IW10 lossless slow start: 4 rounds.
	if err := c.Transfer(100*1024, func(r TransferResult) { res = r; gotDone = true }); err != nil {
		t.Fatal(err)
	}
	n.Engine().Run()
	if !gotDone {
		t.Fatal("transfer never completed")
	}
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if res.Elapsed != 400*time.Millisecond {
		t.Errorf("elapsed = %v, want 400ms", res.Elapsed)
	}
	if res.Retransmits != 0 {
		t.Errorf("retransmits = %d, want 0", res.Retransmits)
	}
	if n.CompletedTransfers() != 1 {
		t.Errorf("CompletedTransfers = %d", n.CompletedTransfers())
	}
}

func TestTransferWithLargeIWFinishesFaster(t *testing.T) {
	run := func(iw int) time.Duration {
		n := twoHosts(t, PathConfig{RTT: 120 * time.Millisecond})
		h, _ := n.Host(hostA)
		if iw != 0 {
			_ = h.AddRoute(kernel.Route{Prefix: netip.PrefixFrom(hostB, 32), InitCwnd: iw})
		}
		c, err := n.Open(hostA, hostB)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed time.Duration
		_ = c.Transfer(100*1024, func(r TransferResult) { elapsed = r.Elapsed })
		n.Engine().Run()
		return elapsed
	}
	def, riptide := run(0), run(100)
	if riptide >= def {
		t.Errorf("riptide elapsed %v >= default %v", riptide, def)
	}
	if riptide != 120*time.Millisecond {
		t.Errorf("IW100 elapsed = %v, want single RTT", riptide)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	c, _ := n.Open(hostA, hostB)
	called := false
	if err := c.Transfer(0, func(r TransferResult) {
		called = true
		if r.Rounds != 0 || r.Bytes != 0 {
			t.Errorf("zero transfer result = %+v", r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("zero-byte transfer callback not invoked synchronously")
	}
}

func TestTransferOnClosedConn(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	c, _ := n.Open(hostA, hostB)
	c.Close()
	if err := c.Transfer(1000, nil); err != ErrConnClosed {
		t.Errorf("err = %v, want ErrConnClosed", err)
	}
}

func TestCloseIdempotentAndUnregisters(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	h, _ := n.Host(hostA)
	c, _ := n.Open(hostA, hostB)
	if h.ConnCount() != 1 {
		t.Fatalf("ConnCount = %d", h.ConnCount())
	}
	c.Close()
	c.Close()
	if h.ConnCount() != 0 {
		t.Errorf("ConnCount after close = %d", h.ConnCount())
	}
	if !c.Closed() {
		t.Error("Closed() = false")
	}
}

func TestTransfersSerializeFIFO(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	var order []int
	_ = c.Transfer(14480, func(TransferResult) { order = append(order, 1) })
	_ = c.Transfer(14480, func(TransferResult) { order = append(order, 2) })
	if c.Idle() {
		t.Error("conn should not be idle with queued transfers")
	}
	n.Engine().Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("completion order = %v", order)
	}
	if !c.Idle() {
		t.Error("conn should be idle after transfers drain")
	}
}

func TestSnapshotReflectsProgress(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	_ = c.Transfer(100*1024, nil)
	n.Engine().Run()
	snap := c.Snapshot()
	if snap.Cwnd <= kernel.DefaultInitCwnd {
		t.Errorf("cwnd = %d, want grown beyond initial", snap.Cwnd)
	}
	if snap.BytesAcked < 100*1024 {
		t.Errorf("BytesAcked = %d, want >= 100KB", snap.BytesAcked)
	}
	if snap.Dst != hostB || snap.Src != hostA {
		t.Errorf("snapshot addrs = %v -> %v", snap.Src, snap.Dst)
	}
	if snap.RTT != 100*time.Millisecond {
		t.Errorf("snapshot RTT = %v", snap.RTT)
	}
}

func TestKernelSeesConnection(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	h, _ := n.Host(hostA)
	c, _ := n.Open(hostA, hostB)
	_ = c
	snaps := h.Connections()
	if len(snaps) != 1 {
		t.Fatalf("kernel sees %d conns, want 1", len(snaps))
	}
	if snaps[0].Cwnd != kernel.DefaultInitCwnd {
		t.Errorf("kernel-observed cwnd = %d", snaps[0].Cwnd)
	}
}

func TestRandomLossCausesRetransmits(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond, LossRate: 0.05})
	c, _ := n.Open(hostA, hostB)
	var res TransferResult
	_ = c.Transfer(1<<20, func(r TransferResult) { res = r })
	n.Engine().Run()
	if res.Retransmits == 0 {
		t.Error("5% loss on 1MB transfer produced no retransmits")
	}
	if res.Bytes < 1<<20 {
		t.Errorf("delivered bytes = %d, want >= 1MB", res.Bytes)
	}
	if c.Window().LossEvents() == 0 {
		t.Error("window never saw a loss event")
	}
}

func TestLossSlowsTransfer(t *testing.T) {
	elapsed := func(loss float64, seed int64) time.Duration {
		engine := eventsim.NewEngine()
		n, err := NewNetwork(Config{Engine: engine, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 100 * time.Millisecond, LossRate: loss})
		c, _ := n.Open(hostA, hostB)
		var out time.Duration
		_ = c.Transfer(512*1024, func(r TransferResult) { out = r.Elapsed })
		engine.Run()
		return out
	}
	if clean, lossy := elapsed(0, 7), elapsed(0.08, 7); lossy <= clean {
		t.Errorf("lossy transfer (%v) not slower than clean (%v)", lossy, clean)
	}
}

func TestCongestionLossWhenOverCapacity(t *testing.T) {
	// Tiny capacity: concurrent large transfers must overload the path.
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond, CapacitySegments: 20})
	var totalRetrans int64
	for i := 0; i < 8; i++ {
		c, err := n.Open(hostA, hostB)
		if err != nil {
			t.Fatal(err)
		}
		_ = c.Transfer(512*1024, func(r TransferResult) { totalRetrans += r.Retransmits })
	}
	n.Engine().Run()
	if totalRetrans == 0 {
		t.Error("overloaded path produced no congestion loss")
	}
}

func TestNoCongestionLossUnderCapacity(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond, CapacitySegments: 100000})
	c, _ := n.Open(hostA, hostB)
	var res TransferResult
	_ = c.Transfer(100*1024, func(r TransferResult) { res = r })
	n.Engine().Run()
	if res.Retransmits != 0 {
		t.Errorf("retransmits = %d under ample capacity", res.Retransmits)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, int64) {
		engine := eventsim.NewEngine()
		n, _ := NewNetwork(Config{Engine: engine, Seed: 42})
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 80 * time.Millisecond, LossRate: 0.03})
		c, _ := n.Open(hostA, hostB)
		var res TransferResult
		_ = c.Transfer(1<<20, func(r TransferResult) { res = r })
		engine.Run()
		return res.Elapsed, res.Retransmits
	}
	e1, r1 := run()
	e2, r2 := run()
	if e1 != e2 || r1 != r2 {
		t.Errorf("replay diverged: (%v,%d) vs (%v,%d)", e1, r1, e2, r2)
	}
}

func TestRenoAlgorithmOption(t *testing.T) {
	engine := eventsim.NewEngine()
	n, err := NewNetwork(Config{Engine: engine, Algorithm: tcpsim.NewReno()})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = n.AddHost(hostA)
	_, _ = n.AddHost(hostB)
	_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	if c.Window().Algorithm().Name() != "reno" {
		t.Errorf("algorithm = %q", c.Window().Algorithm().Name())
	}
}

func TestPathRTT(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 150 * time.Millisecond})
	rtt, err := n.PathRTT(hostA, hostB)
	if err != nil || rtt != 150*time.Millisecond {
		t.Errorf("PathRTT = %v, %v", rtt, err)
	}
	if _, err := n.PathRTT(hostA, netip.MustParseAddr("8.8.8.8")); err == nil {
		t.Error("missing path accepted")
	}
}

// Property: lossless transfers complete in exactly the analytic slow-start
// round count (ties netsim to internal/model).
func TestLosslessMatchesModelProperty(t *testing.T) {
	f := func(kb uint16, iwRaw uint8) bool {
		bytes := int64(kb%2000+1) * 1024
		iw := int(iwRaw%150) + 1
		engine := eventsim.NewEngine()
		n, err := NewNetwork(Config{Engine: engine, Seed: 1})
		if err != nil {
			return false
		}
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 50 * time.Millisecond})
		h, _ := n.Host(hostA)
		_ = h.AddRoute(kernel.Route{Prefix: netip.PrefixFrom(hostB, 32), InitCwnd: iw})
		c, err := n.Open(hostA, hostB)
		if err != nil {
			return false
		}
		var rounds int
		_ = c.Transfer(bytes, func(r TransferResult) { rounds = r.Rounds })
		engine.Run()

		// Analytic: slow start doubling from iw.
		segs := (bytes + int64(n.MSS()) - 1) / int64(n.MSS())
		want, window, sent := 0, int64(iw), int64(0)
		for sent < segs {
			sent += window
			window *= 2
			want++
		}
		return rounds == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: transfers always deliver all requested bytes, under any loss
// rate below 50%.
func TestAllBytesDeliveredProperty(t *testing.T) {
	f := func(kb uint8, lossRaw uint8, seed int64) bool {
		bytes := int64(kb%200+1) * 1024
		loss := float64(lossRaw%50) / 100
		engine := eventsim.NewEngine()
		n, err := NewNetwork(Config{Engine: engine, Seed: seed})
		if err != nil {
			return false
		}
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 10 * time.Millisecond, LossRate: loss})
		c, err := n.Open(hostA, hostB)
		if err != nil {
			return false
		}
		var res TransferResult
		_ = c.Transfer(bytes, func(r TransferResult) { res = r })
		engine.Run()
		return res.Bytes >= bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIdleRestartResetsWindow(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	_ = c.Transfer(512*1024, nil)
	n.Engine().Run()
	grown := c.Window().Cwnd()
	if grown <= kernel.DefaultInitCwnd {
		t.Fatalf("window never grew: %d", grown)
	}
	// Let the connection idle past the RTO, then start another transfer:
	// RFC 2861 restart must bring the first burst back to the initial
	// window.
	n.Engine().RunUntil(n.Engine().Now() + time.Minute)
	var rounds int
	_ = c.Transfer(512*1024, func(r TransferResult) { rounds = r.Rounds })
	n.Engine().Run()
	// 512KB = 363 segs from IW10: 10+20+40+80+160+320 -> 6 rounds.
	if rounds != 6 {
		t.Errorf("rounds after idle = %d, want 6 (restarted from IW10)", rounds)
	}
}

func TestIdleRestartUsesCurrentRoute(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	_ = c.Transfer(100*1024, nil)
	n.Engine().Run()
	// Riptide programs a route AFTER the connection opened; the idle
	// restart must pick it up, like Linux re-reading dst metrics.
	h, _ := n.Host(hostA)
	_ = h.AddRoute(kernel.Route{Prefix: netip.PrefixFrom(hostB, 32), InitCwnd: 80})
	n.Engine().RunUntil(n.Engine().Now() + time.Minute)
	var rounds int
	_ = c.Transfer(100*1024, func(r TransferResult) { rounds = r.Rounds })
	n.Engine().Run()
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1 (restart window 80 >= 71 segments)", rounds)
	}
	if c.Window().InitCwnd() != 80 {
		t.Errorf("restart window = %d, want 80", c.Window().InitCwnd())
	}
}

func TestIdleRestartDisabled(t *testing.T) {
	engine := eventsim.NewEngine()
	n, err := NewNetwork(Config{Engine: engine, Seed: 1, DisableIdleRestart: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = n.AddHost(hostA)
	_, _ = n.AddHost(hostB)
	_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	_ = c.Transfer(512*1024, nil)
	engine.Run()
	engine.RunUntil(engine.Now() + time.Minute)
	var rounds int
	_ = c.Transfer(512*1024, func(r TransferResult) { rounds = r.Rounds })
	engine.Run()
	if rounds >= 6 {
		t.Errorf("rounds = %d with idle restart disabled, want fewer (window kept)", rounds)
	}
}

func TestNoIdleRestartForBackToBackTransfers(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	var first, second int
	_ = c.Transfer(512*1024, func(r TransferResult) { first = r.Rounds })
	_ = c.Transfer(512*1024, func(r TransferResult) { second = r.Rounds })
	n.Engine().Run()
	if second >= first {
		t.Errorf("back-to-back rounds = %d then %d; second should reuse the grown window", first, second)
	}
}

func TestRTTJitterValidation(t *testing.T) {
	n := newNet(t, 1)
	_, _ = n.AddHost(hostA)
	_, _ = n.AddHost(hostB)
	for _, bad := range []float64{-0.1, 1.5} {
		if err := n.SetPath(hostA, hostB, PathConfig{RTT: time.Second, RTTJitter: bad}); err == nil {
			t.Errorf("jitter %v accepted", bad)
		}
	}
}

func TestRTTJitterLengthensRounds(t *testing.T) {
	elapsed := func(jitter float64) time.Duration {
		engine := eventsim.NewEngine()
		n, err := NewNetwork(Config{Engine: engine, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 100 * time.Millisecond, RTTJitter: jitter})
		c, _ := n.Open(hostA, hostB)
		var out time.Duration
		_ = c.Transfer(100*1024, func(r TransferResult) { out = r.Elapsed })
		engine.Run()
		return out
	}
	exact := elapsed(0)
	jittered := elapsed(0.1)
	if exact != 400*time.Millisecond {
		t.Errorf("exact elapsed = %v, want 400ms", exact)
	}
	if jittered <= exact {
		t.Errorf("jittered elapsed %v not longer than exact %v", jittered, exact)
	}
	if jittered > 2*exact {
		t.Errorf("jittered elapsed %v implausibly long", jittered)
	}
}

func TestRTTJitterDeterministicPerSeed(t *testing.T) {
	run := func() time.Duration {
		engine := eventsim.NewEngine()
		n, _ := NewNetwork(Config{Engine: engine, Seed: 9})
		_, _ = n.AddHost(hostA)
		_, _ = n.AddHost(hostB)
		_ = n.SetBidiPath(hostA, hostB, PathConfig{RTT: 100 * time.Millisecond, RTTJitter: 0.2})
		c, _ := n.Open(hostA, hostB)
		var out time.Duration
		_ = c.Transfer(256*1024, func(r TransferResult) { out = r.Elapsed })
		engine.Run()
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("jittered runs diverged: %v vs %v", a, b)
	}
}

func TestCloseConnsInvolving(t *testing.T) {
	n := twoHosts(t, PathConfig{})
	hostC := netip.MustParseAddr("10.0.0.3")
	if _, err := n.AddHost(hostC); err != nil {
		t.Fatal(err)
	}
	_ = n.SetBidiPath(hostA, hostC, PathConfig{RTT: 50 * time.Millisecond})
	_ = n.SetBidiPath(hostB, hostC, PathConfig{RTT: 50 * time.Millisecond})

	ab, _ := n.Open(hostA, hostB)
	ac, _ := n.Open(hostA, hostC)
	cb, _ := n.Open(hostC, hostB)
	if n.OpenConns() != 3 {
		t.Fatalf("open = %d", n.OpenConns())
	}

	// Reboot C: both its outgoing and incoming connections die.
	if closed := n.CloseConnsInvolving(hostC); closed != 2 {
		t.Errorf("closed = %d, want 2", closed)
	}
	if !ac.Closed() || !cb.Closed() {
		t.Error("connections touching C survived")
	}
	if ab.Closed() {
		t.Error("unrelated connection killed")
	}
	if n.OpenConns() != 1 {
		t.Errorf("open after reboot = %d, want 1", n.OpenConns())
	}
}

func TestCloseMidTransferStopsRounds(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	c, _ := n.Open(hostA, hostB)
	done := false
	_ = c.Transfer(1<<20, func(TransferResult) { done = true })
	// Let one round complete, then kill the connection mid-transfer.
	n.Engine().RunUntil(150 * time.Millisecond)
	c.Close()
	n.Engine().Run()
	if done {
		t.Error("transfer completed on a closed connection")
	}
	if !c.Closed() {
		t.Error("Closed() = false after Close")
	}
	if err := c.Transfer(100, nil); err != ErrConnClosed {
		t.Errorf("Transfer after close = %v, want ErrConnClosed", err)
	}
}

func TestSetPathRTTAffectsLiveConn(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 100 * time.Millisecond})
	conn, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	var first time.Duration
	if err := conn.Transfer(1000, func(r TransferResult) { first = r.Elapsed }); err != nil {
		t.Fatal(err)
	}
	n.Engine().Run()
	if first != 100*time.Millisecond {
		t.Fatalf("one-round transfer took %v, want 100ms", first)
	}
	if err := n.SetPathRTT(hostA, hostB, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var second time.Duration
	// Disable idle restart effects by transferring immediately; one round
	// still fits the initial window.
	if err := conn.Transfer(1000, func(r TransferResult) { second = r.Elapsed }); err != nil {
		t.Fatal(err)
	}
	n.Engine().Run()
	if second != 300*time.Millisecond {
		t.Fatalf("post-flap transfer took %v, want 300ms", second)
	}
	if err := n.SetPathRTT(hostA, hostB, 0); err == nil {
		t.Error("zero RTT accepted")
	}
	if err := n.SetPathRTT(hostA, netip.MustParseAddr("10.9.9.9"), time.Second); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestSetPathBlockedPartition(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 50 * time.Millisecond})
	conn, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetPathBlocked(hostA, hostB, true); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(hostA, hostB); err == nil {
		t.Fatal("open over a blocked path succeeded")
	}
	// The reverse direction is untouched.
	if c, err := n.Open(hostB, hostA); err != nil {
		t.Fatalf("reverse open failed: %v", err)
	} else {
		c.Close()
	}
	// A transfer over the blocked path makes no progress: every segment is
	// lost and retransmitted.
	done := false
	if err := conn.Transfer(2000, func(TransferResult) { done = true }); err != nil {
		t.Fatal(err)
	}
	n.Engine().RunUntil(n.Engine().Now() + 2*time.Second)
	if done {
		t.Fatal("transfer completed over a blocked path")
	}
	if n.Retransmitted() == 0 {
		t.Fatal("blocked path produced no retransmits")
	}
	// Unblock: the stalled transfer eventually completes.
	if err := n.SetPathBlocked(hostA, hostB, false); err != nil {
		t.Fatal(err)
	}
	n.Engine().RunUntil(n.Engine().Now() + 30*time.Second)
	if !done {
		t.Fatal("transfer did not complete after unblocking")
	}
	if err := n.SetPathBlocked(hostA, netip.MustParseAddr("10.9.9.9"), true); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestCloseConnsBetween(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 50 * time.Millisecond})
	c1, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.Open(hostB, hostA)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.CloseConnsBetween(hostA, hostB); got != 2 {
		t.Fatalf("closed %d conns, want 2", got)
	}
	if !c1.Closed() || !c2.Closed() {
		t.Fatal("connections not closed")
	}
	if got := n.CloseConnsBetween(hostA, hostB); got != 0 {
		t.Fatalf("second close reported %d conns", got)
	}
}

func TestRetransmittedCounterMatchesTransferResults(t *testing.T) {
	n := twoHosts(t, PathConfig{RTT: 50 * time.Millisecond, LossRate: 0.2})
	conn, err := n.Open(hostA, hostB)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 5; i++ {
		if err := conn.Transfer(50_000, func(r TransferResult) { total += r.Retransmits }); err != nil {
			t.Fatal(err)
		}
	}
	n.Engine().Run()
	if total == 0 {
		t.Fatal("lossy path produced no retransmits")
	}
	if n.Retransmitted() != total {
		t.Fatalf("network counter %d != sum of transfer results %d", n.Retransmitted(), total)
	}
}
