# Riptide reproduction build targets. Everything is stdlib Go; no tools
# beyond the Go toolchain are required.

GO ?= go

.PHONY: all check build vet test test-short test-race race bench bench-json bench-serve report report-full fuzz fuzz-guard fuzz-gossip fuzz-netlink fuzz-scenario scenarios examples clean

all: check

# Default gate: compile, vet, full test suite, and a race pass over the
# packages with real concurrency (the agent loop and the ss/ip backends).
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./internal/core/... ./internal/guard/... ./internal/linux/... ./internal/netlink/... ./internal/fleet/... ./internal/gossip/...

race:
	$(GO) test -race ./internal/core ./internal/kernel .

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf-trajectory snapshot (agent-tick scaling series —
# full-rescan, delta-steady, and delta-churn modes — plus batched-vs-
# individual route programming and the fleet-serving fan-in series) for
# PR-over-PR comparison.
bench-json:
	$(GO) run ./cmd/riptide-bench -perf-only -perf-json BENCH_10.json -perf-sizes 1000,10000,100000,1000000

# The fleet-serving benchmarks alone: what one gossip GET costs the serving
# agent, converged (cache hit) vs churning (rebuild per request) vs the 304
# revalidation path.
bench-serve:
	$(GO) test -bench 'BenchmarkServe' -benchmem -run '^$$' ./internal/fleet/

# Quick-scale markdown report to stdout.
report:
	$(GO) run ./cmd/riptide-bench -scale quick

# Full-scale report + plottable series CSVs, as committed under docs/.
report-full:
	$(GO) run ./cmd/riptide-bench -scale full -o docs/REPORT.md -series-dir docs/series

fuzz:
	$(GO) test -fuzz=FuzzParseSS -fuzztime=30s ./internal/linux
	$(GO) test -fuzz=FuzzParseIPRouteShow -fuzztime=30s ./internal/linux
	$(GO) test -fuzz=FuzzReadProbes -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzReadCwndSamples -fuzztime=30s ./internal/trace

# Fuzz the governor's telemetry intake: arbitrary (including adversarial)
# counter values must never panic it or corrupt its state invariants.
fuzz-guard:
	$(GO) test -fuzz=FuzzGovernorObserve -fuzztime=30s ./internal/guard

# Fuzz the gossip wire decoders: arbitrary digest/delta payloads (the
# bytes a fleet peer hands us) must never panic, and whatever decodes must
# re-encode to an equivalent message.
fuzz-gossip:
	$(GO) test -fuzz=FuzzDecodeDigest -fuzztime=30s ./internal/gossip
	$(GO) test -fuzz=FuzzDecodeDelta -fuzztime=30s ./internal/gossip

# Fuzz the netlink wire decoders: raw sock_diag and rtnetlink byte streams
# (truncated headers, lying lengths, corrupt nested metrics) must never
# panic or yield structurally invalid observations/routes.
fuzz-netlink:
	$(GO) test -fuzz=FuzzParseInetDiagMsg -fuzztime=30s ./internal/netlink
	$(GO) test -fuzz=FuzzParseRouteMsg -fuzztime=30s ./internal/netlink

# Fuzz the scenario engine: the YAML-subset decoder and the schema layer
# must never panic, and whatever they accept must round-trip.
fuzz-scenario:
	$(GO) test -fuzz=FuzzDecodeYAML -fuzztime=30s ./internal/scenario
	$(GO) test -fuzz=FuzzParseScenario -fuzztime=30s ./internal/scenario

# Validate and execute the committed scenario library.
scenarios:
	$(GO) run ./cmd/riptide-sim validate scenarios/*.yaml
	$(GO) run ./cmd/riptide-sim run scenarios/*.yaml

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cdnprobes
	$(GO) run ./examples/trafficshift
	$(GO) run ./examples/loadbalancer

clean:
	$(GO) clean ./...
