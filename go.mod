module riptide

go 1.22
