package riptide

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/kernel"
	"riptide/internal/linux"
)

// scriptedRunner plays back a sequence of `ss -tin` outputs and records
// every `ip` invocation, emulating a live Linux host across agent ticks.
type scriptedRunner struct {
	ssOutputs []string
	ssCalls   int
	ipCalls   []string
}

func (s *scriptedRunner) Run(name string, args ...string) ([]byte, error) {
	switch name {
	case "ss":
		idx := s.ssCalls
		if idx >= len(s.ssOutputs) {
			idx = len(s.ssOutputs) - 1
		}
		s.ssCalls++
		return []byte(s.ssOutputs[idx]), nil
	case "ip":
		s.ipCalls = append(s.ipCalls, strings.Join(args, " "))
		return nil, nil
	default:
		return nil, fmt.Errorf("unexpected command %q", name)
	}
}

// ssOutput renders a plausible `ss -tin` listing for the given per-peer
// windows.
func ssOutput(cwnds map[string]int) string {
	var b strings.Builder
	b.WriteString("State  Recv-Q Send-Q Local Address:Port  Peer Address:Port\n")
	for peer, cwnd := range cwnds {
		fmt.Fprintf(&b, "ESTAB  0      0      10.0.0.5:43210      %s:443\n", peer)
		fmt.Fprintf(&b, "\t cubic rto:204 rtt:120.5/10 mss:1448 cwnd:%d bytes_acked:987654\n", cwnd)
	}
	return b.String()
}

// TestLinuxBackendEndToEnd drives the full production code path — ss parse,
// Algorithm 1, ip route programming, TTL expiry, shutdown cleanup — against
// scripted command output, no root required.
func TestLinuxBackendEndToEnd(t *testing.T) {
	runner := &scriptedRunner{ssOutputs: []string{
		// Two rounds of healthy connections to 10.0.0.127, then silence.
		ssOutput(map[string]int{"10.0.0.127": 60}),
		ssOutput(map[string]int{"10.0.0.127": 100}),
		ssOutput(nil),
	}}
	sampler, err := linux.NewSampler(runner)
	if err != nil {
		t.Fatal(err)
	}
	routes, err := linux.NewRoutes(runner, linux.RoutesConfig{Device: "eth0", Gateway: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	agent, err := core.New(core.Config{
		Sampler: sampler,
		Routes:  routes,
		Clock:   func() time.Duration { return now },
		TTL:     90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tick 1: learns 60, programs the Figure-8-style route.
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(runner.ipCalls) != 1 || !strings.Contains(runner.ipCalls[0], "initcwnd 60") {
		t.Fatalf("ip calls after tick 1 = %v", runner.ipCalls)
	}
	if !strings.Contains(runner.ipCalls[0], "route replace 10.0.0.127/32 dev eth0 proto static") {
		t.Errorf("route command = %q", runner.ipCalls[0])
	}

	// Tick 2: EWMA folds the new 100 in: 0.75*60 + 0.25*100 = 70.
	now += time.Second
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(runner.ipCalls) != 2 || !strings.Contains(runner.ipCalls[1], "initcwnd 70") {
		t.Fatalf("ip calls after tick 2 = %v", runner.ipCalls)
	}

	// Connections vanish; before the TTL nothing changes.
	now += 60 * time.Second
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(runner.ipCalls) != 2 {
		t.Fatalf("route touched before TTL: %v", runner.ipCalls)
	}

	// Past the TTL the route is withdrawn, restoring the default.
	now += 40 * time.Second
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(runner.ipCalls) != 3 || runner.ipCalls[2] != "route del 10.0.0.127/32 dev eth0 proto static via 10.0.0.1" {
		t.Fatalf("ip calls after expiry = %v", runner.ipCalls)
	}

	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if len(runner.ipCalls) != 3 {
		t.Errorf("Close touched already-clean state: %v", runner.ipCalls)
	}
}

// TestSimKernelRoutesRoundTripThroughLinuxParser proves the two backends
// describe the same world: routes programmed into the simulated kernel
// render as iproute2 text that the production parser reads back verbatim.
func TestSimKernelRoutesRoundTripThroughLinuxParser(t *testing.T) {
	h, err := kernel.NewHost(netip.MustParseAddr("10.0.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	want := []kernel.Route{
		{Prefix: netip.MustParsePrefix("10.0.0.127/32"), InitCwnd: 80, Proto: "static"},
		{Prefix: netip.MustParsePrefix("10.9.0.0/16"), InitCwnd: 40, Proto: "static"},
	}
	for _, r := range want {
		if err := h.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	rendered := kernel.FormatRoutes(h.Routes())
	parsed := linux.ParseIPRouteShow([]byte(rendered))
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d routes from %q", len(parsed), rendered)
	}
	byPrefix := map[netip.Prefix]linux.InstalledRoute{}
	for _, r := range parsed {
		byPrefix[r.Prefix] = r
	}
	for _, w := range want {
		got, ok := byPrefix[w.Prefix]
		if !ok {
			t.Errorf("route %v missing after round trip", w.Prefix)
			continue
		}
		if got.InitCwnd != w.InitCwnd || got.Proto != w.Proto {
			t.Errorf("route %v = %+v, want initcwnd %d proto %s", w.Prefix, got, w.InitCwnd, w.Proto)
		}
	}
}
